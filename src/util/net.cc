#include "util/net.hh"

#include <cerrno>
#include <chrono>
#include <cstring>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace lva {

namespace {

using SteadyClock = std::chrono::steady_clock;

/** Absolute deadline for a timeoutMs budget; max() = no deadline. */
SteadyClock::time_point
deadlineFor(u64 timeoutMs)
{
    if (timeoutMs == 0)
        return SteadyClock::time_point::max();
    return SteadyClock::now() + std::chrono::milliseconds(timeoutMs);
}

/**
 * Milliseconds left until @p deadline as a poll(2) timeout operand:
 * -1 for "no deadline", 0 when already expired (poll returns at
 * once), clamped into int range otherwise.
 */
int
pollBudget(SteadyClock::time_point deadline)
{
    if (deadline == SteadyClock::time_point::max())
        return -1;
    const auto left = std::chrono::duration_cast<
        std::chrono::milliseconds>(deadline - SteadyClock::now());
    if (left.count() <= 0)
        return 0;
    if (left.count() > 60'000)
        return 60'000; // re-check the deadline at least every minute
    return static_cast<int>(left.count());
}

[[noreturn]] void
throwErrno(const std::string &what)
{
    throw NetError(what + ": " + std::strerror(errno));
}

/**
 * Wait until @p fd is ready for @p events or @p deadline passes.
 * Throws NetError on expiry or poll failure.
 */
void
waitReady(int fd, short events, SteadyClock::time_point deadline,
          const char *what)
{
    for (;;) {
        struct pollfd pfd;
        pfd.fd = fd;
        pfd.events = events;
        pfd.revents = 0;
        const int budget = pollBudget(deadline);
        if (deadline != SteadyClock::time_point::max() && budget == 0)
            throw NetError(std::string(what) + ": deadline expired");
        const int rc = ::poll(&pfd, 1, budget);
        if (rc > 0)
            return; // readable/writable — or error, surfaced by the op
        if (rc == 0)
            continue; // interim wakeup; loop re-checks the deadline
        if (errno == EINTR)
            continue;
        throwErrno(std::string(what) + ": poll");
    }
}

void
encodeHeader(unsigned char (&hdr)[8], std::size_t n)
{
    std::memcpy(hdr, frameMagic(), 4);
    hdr[4] = static_cast<unsigned char>((n >> 24) & 0xff);
    hdr[5] = static_cast<unsigned char>((n >> 16) & 0xff);
    hdr[6] = static_cast<unsigned char>((n >> 8) & 0xff);
    hdr[7] = static_cast<unsigned char>(n & 0xff);
}

} // namespace

std::size_t
frameMaxBytes()
{
    return 64u * 1024 * 1024;
}

const char *
frameMagic()
{
    return "LVA1";
}

TcpStream
TcpStream::connectTo(const std::string &host, u16 port, u64 timeoutMs)
{
    const auto deadline = deadlineFor(timeoutMs);

    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        throw NetError("connect: bad address '" + host + "'");

    const int fd =
        ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        throwErrno("connect: socket");
    TcpStream stream(fd);

    // Non-blocking connect so the deadline applies to the handshake;
    // the socket goes back to blocking mode afterwards (all later I/O
    // polls for readiness before each operation).
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
        throwErrno("connect: fcntl");
    const int rc = ::connect(
        fd, reinterpret_cast<struct sockaddr *>(&addr), sizeof(addr));
    if (rc < 0 && errno != EINPROGRESS)
        throwErrno("connect");
    if (rc < 0) {
        waitReady(fd, POLLOUT, deadline, "connect");
        int err = 0;
        socklen_t len = sizeof(err);
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0)
            throwErrno("connect: getsockopt");
        if (err != 0) {
            errno = err;
            throwErrno("connect");
        }
    }
    if (::fcntl(fd, F_SETFL, flags) < 0)
        throwErrno("connect: fcntl");
    return stream;
}

void
TcpStream::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
TcpStream::sendAll(const void *data, std::size_t n, u64 timeoutMs)
{
    if (fd_ < 0)
        throw NetError("send on a closed stream");
    const auto deadline = deadlineFor(timeoutMs);
    const char *p = static_cast<const char *>(data);
    std::size_t sent = 0;
    while (sent < n) {
        waitReady(fd_, POLLOUT, deadline, "send");
        const ssize_t rc =
            ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
        if (rc > 0) {
            sent += static_cast<std::size_t>(rc);
            continue;
        }
        if (rc < 0 && (errno == EINTR || errno == EAGAIN ||
                       errno == EWOULDBLOCK))
            continue;
        throwErrno("send");
    }
}

bool
TcpStream::recvExact(void *data, std::size_t n, u64 timeoutMs,
                     bool eofOk)
{
    if (fd_ < 0)
        throw NetError("recv on a closed stream");
    const auto deadline = deadlineFor(timeoutMs);
    char *p = static_cast<char *>(data);
    std::size_t got = 0;
    while (got < n) {
        waitReady(fd_, POLLIN, deadline, "recv");
        const ssize_t rc = ::recv(fd_, p + got, n - got, 0);
        if (rc > 0) {
            got += static_cast<std::size_t>(rc);
            continue;
        }
        if (rc == 0) {
            if (got == 0 && eofOk)
                return false;
            throw NetError("recv: connection closed mid-transfer");
        }
        if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)
            continue;
        throwErrno("recv");
    }
    return true;
}

TcpListener::TcpListener(u16 port)
{
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd_ < 0)
        throwErrno("listen: socket");
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::bind(fd_, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        const int saved = errno;
        ::close(fd_);
        fd_ = -1;
        errno = saved;
        throwErrno("listen: bind 127.0.0.1:" + std::to_string(port));
    }
    if (::listen(fd_, 64) < 0) {
        const int saved = errno;
        ::close(fd_);
        fd_ = -1;
        errno = saved;
        throwErrno("listen");
    }

    socklen_t len = sizeof(addr);
    if (::getsockname(
            fd_, reinterpret_cast<struct sockaddr *>(&addr), &len) < 0)
        throwErrno("listen: getsockname");
    port_ = ntohs(addr.sin_port);
}

TcpStream
TcpListener::acceptOne(u64 timeoutMs)
{
    if (fd_ < 0)
        throw NetError("accept on a closed listener");
    const auto deadline = deadlineFor(timeoutMs);
    for (;;) {
        struct pollfd pfd;
        pfd.fd = fd_;
        pfd.events = POLLIN;
        pfd.revents = 0;
        const int budget = pollBudget(deadline);
        if (deadline != SteadyClock::time_point::max() && budget == 0)
            return TcpStream(); // timeout: no connection waiting
        const int prc = ::poll(&pfd, 1, budget);
        if (prc == 0)
            continue; // loop re-checks the deadline
        if (prc < 0) {
            if (errno == EINTR)
                continue;
            throwErrno("accept: poll");
        }
        const int conn = ::accept4(fd_, nullptr, nullptr, SOCK_CLOEXEC);
        if (conn >= 0)
            return TcpStream(conn);
        if (errno == EINTR || errno == EAGAIN ||
            errno == EWOULDBLOCK || errno == ECONNABORTED)
            continue;
        throwErrno("accept");
    }
}

void
TcpListener::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

void
writeFrame(TcpStream &stream, const std::string &payload, u64 timeoutMs)
{
    if (payload.size() > frameMaxBytes())
        throw NetError("frame payload too large (" +
                       std::to_string(payload.size()) + " > " +
                       std::to_string(frameMaxBytes()) + " bytes)");
    unsigned char hdr[8];
    encodeHeader(hdr, payload.size());
    stream.sendAll(hdr, sizeof(hdr), timeoutMs);
    if (!payload.empty())
        stream.sendAll(payload.data(), payload.size(), timeoutMs);
}

bool
readFrame(TcpStream &stream, std::string &payload, u64 timeoutMs)
{
    unsigned char hdr[8];
    if (!stream.recvExact(hdr, sizeof(hdr), timeoutMs,
                          /*eofOk=*/true))
        return false; // clean EOF at a frame boundary
    if (std::memcmp(hdr, frameMagic(), 4) != 0)
        throw NetError("bad frame magic");
    const std::size_t n = (static_cast<std::size_t>(hdr[4]) << 24) |
                          (static_cast<std::size_t>(hdr[5]) << 16) |
                          (static_cast<std::size_t>(hdr[6]) << 8) |
                          static_cast<std::size_t>(hdr[7]);
    if (n > frameMaxBytes())
        throw NetError("frame payload too large (" +
                       std::to_string(n) + " > " +
                       std::to_string(frameMaxBytes()) + " bytes)");
    payload.resize(n);
    if (n > 0)
        stream.recvExact(payload.data(), n, timeoutMs);
    return true;
}

} // namespace lva
