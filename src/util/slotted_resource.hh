/**
 * @file
 * Bandwidth-limited resource modelled as a calendar of time buckets.
 *
 * The timing replay advances four core clocks that can skew by a stall
 * epoch relative to each other, so requests reach shared resources
 * slightly out of global time order. A strict busy-until model would
 * queue an earlier-timestamped request behind a later one — a
 * causality violation that snowballs into unbounded artificial
 * queueing. A calendar of fixed-width buckets with per-bucket service
 * capacity accepts out-of-order arrivals gracefully: a request books
 * the first bucket at or after its arrival time with capacity left,
 * which preserves genuine burst-induced queueing without the
 * pathology.
 */

#ifndef LVA_UTIL_SLOTTED_RESOURCE_HH
#define LVA_UTIL_SLOTTED_RESOURCE_HH

#include <vector>

#include "util/logging.hh"
#include "util/types.hh"

namespace lva {

/**
 * A resource that can serve `capacity` cycles of work per
 * `bucketCycles`-cycle bucket (capacity == bucketCycles models a fully
 * pipelined unit serving one cycle of work per cycle).
 */
class SlottedResource
{
  public:
    /**
     * @param bucket_cycles calendar granularity
     * @param capacity      service cycles available per bucket
     * @param buckets       ring size (the look-ahead horizon)
     */
    explicit SlottedResource(double bucket_cycles = 8.0,
                             double capacity = 8.0,
                             std::size_t buckets = 1 << 14)
        : bucketCycles_(bucket_cycles), capacity_(capacity),
          used_(buckets, 0.0), epoch_(buckets, ~u64(0))
    {
        lva_assert(bucket_cycles > 0.0 && capacity > 0.0,
                   "bad slotted resource parameters");
    }

    /**
     * Book @p service cycles of work starting no earlier than @p t.
     * @return the cycle at which service begins
     */
    double
    acquire(double t, double service)
    {
        if (t < 0.0)
            t = 0.0;
        u64 bucket = static_cast<u64>(t / bucketCycles_);
        for (;;) {
            double &used = usedIn(bucket);
            if (used + service <= capacity_ ||
                used == 0.0 /* oversize requests get a fresh bucket */) {
                const double base =
                    static_cast<double>(bucket) * bucketCycles_ + used;
                used += service;
                const double start = base > t ? base : t;
                waitSum_ += start - t;
                ++requests_;
                return start;
            }
            ++bucket;
        }
    }

    /** Total queueing observed (diagnostics). */
    double waitSum() const { return waitSum_; }
    u64 requests() const { return requests_; }

  private:
    double &
    usedIn(u64 bucket)
    {
        const std::size_t idx = bucket % used_.size();
        if (epoch_[idx] != bucket) {
            epoch_[idx] = bucket;
            used_[idx] = 0.0;
        }
        return used_[idx];
    }

    double bucketCycles_;
    double capacity_;
    std::vector<double> used_;
    std::vector<u64> epoch_;
    double waitSum_ = 0.0;
    u64 requests_ = 0;
};

} // namespace lva

#endif // LVA_UTIL_SLOTTED_RESOURCE_HH
