/**
 * @file
 * Minimal 8-bit grayscale image with PGM (P5) output.
 *
 * Used to regenerate paper Figure 1: the bodytrack output rendered with
 * and without load value approximation.
 */

#ifndef LVA_UTIL_PGM_HH
#define LVA_UTIL_PGM_HH

#include <string>
#include <vector>

#include "util/types.hh"

namespace lva {

/** Row-major 8-bit grayscale image. */
class GrayImage
{
  public:
    GrayImage(u32 width, u32 height, u8 fill = 0);

    u32 width() const { return width_; }
    u32 height() const { return height_; }

    u8 at(u32 x, u32 y) const;
    void set(u32 x, u32 y, u8 v);

    /** Draw a filled disc (clipped at the borders). */
    void fillCircle(i32 cx, i32 cy, i32 radius, u8 v);

    /** Draw a 1-pixel line via Bresenham (clipped at the borders). */
    void drawLine(i32 x0, i32 y0, i32 x1, i32 y1, u8 v);

    const std::vector<u8> &pixels() const { return pixels_; }
    std::vector<u8> &pixels() { return pixels_; }

    /** Write as binary PGM (P5); creates parent directories. */
    void writePgm(const std::string &path) const;

    /** Mean absolute pixel difference, in [0, 255]. */
    static double meanAbsDiff(const GrayImage &a, const GrayImage &b);

  private:
    u32 width_;
    u32 height_;
    std::vector<u8> pixels_;
};

} // namespace lva

#endif // LVA_UTIL_PGM_HH
