/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the library (input generation, annealing
 * proposals, Monte-Carlo paths) flows through Rng so that every experiment
 * is exactly reproducible from a seed. The generator is xoshiro256**,
 * seeded via SplitMix64 as its authors recommend.
 */

#ifndef LVA_UTIL_RANDOM_HH
#define LVA_UTIL_RANDOM_HH

#include <array>
#include <cmath>

#include "util/types.hh"

namespace lva {

/** SplitMix64 step; used for seeding and cheap stateless mixing. */
constexpr u64
splitMix64(u64 &state)
{
    u64 z = (state += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Stateless 64-bit mix of a single value (for hashing). */
constexpr u64
mix64(u64 x)
{
    u64 s = x;
    return splitMix64(s);
}

/**
 * xoshiro256** deterministic PRNG.
 *
 * Small, fast and high quality; identical stream for identical seeds on
 * every platform, which the 5-run averaging methodology relies on.
 */
class Rng
{
  public:
    explicit Rng(u64 seed = 0x5eed'01ad'cafe'f00dULL)
    {
        u64 sm = seed;
        for (auto &word : state_)
            word = splitMix64(sm);
    }

    /** Uniform 64-bit value. */
    u64
    next()
    {
        const u64 result = rotl(state_[1] * 5, 7) * 9;
        const u64 t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be non-zero. */
    u64
    below(u64 bound)
    {
        // Lemire-style rejection-free-enough reduction: fine for
        // simulation purposes (bias < 2^-64 * bound).
        return static_cast<u64>(
            (static_cast<unsigned __int128>(next()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    i64
    range(i64 lo, i64 hi)
    {
        return lo + static_cast<i64>(below(static_cast<u64>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Standard normal deviate (Box-Muller, one value per call). */
    double
    gaussian()
    {
        if (haveSpare_) {
            haveSpare_ = false;
            return spare_;
        }
        double u1 = 0.0;
        while (u1 == 0.0)
            u1 = uniform();
        const double u2 = uniform();
        const double mag = std::sqrt(-2.0 * std::log(u1));
        spare_ = mag * std::sin(2.0 * M_PI * u2);
        haveSpare_ = true;
        return mag * std::cos(2.0 * M_PI * u2);
    }

    /** Bernoulli draw with probability p of true. */
    bool chance(double p) { return uniform() < p; }

  private:
    static constexpr u64 rotl(u64 x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<u64, 4> state_{};
    double spare_ = 0.0;
    bool haveSpare_ = false;
};

} // namespace lva

#endif // LVA_UTIL_RANDOM_HH
