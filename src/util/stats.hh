/**
 * @file
 * Lightweight statistics collection: scalar counters, running means and
 * histograms, in the spirit of gem5's stats package but trimmed to what the
 * LVA evaluation needs.
 */

#ifndef LVA_UTIL_STATS_HH
#define LVA_UTIL_STATS_HH

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "util/logging.hh"
#include "util/types.hh"

namespace lva {

/** Monotonic event counter. */
class Counter
{
  public:
    void inc(u64 n = 1) { value_ += n; }
    void reset() { value_ = 0; }
    u64 value() const { return value_; }

  private:
    u64 value_ = 0;
};

/** Point-in-time value (occupancy, derived metric set at end of run). */
class Gauge
{
  public:
    void set(double v) { value_ = v; }
    void add(double v) { value_ += v; }
    void reset() { value_ = 0.0; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/** Running mean / variance accumulator (Welford). */
class RunningStat
{
  public:
    void
    sample(double x)
    {
        ++n_;
        const double delta = x - mean_;
        mean_ += delta / static_cast<double>(n_);
        m2_ += delta * (x - mean_);
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
        sum_ += x;
    }

    u64 count() const { return n_; }
    double sum() const { return sum_; }
    double mean() const { return n_ ? mean_ : 0.0; }

    double
    variance() const
    {
        return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }

    void
    reset()
    {
        n_ = 0;
        mean_ = m2_ = sum_ = 0.0;
        min_ = std::numeric_limits<double>::infinity();
        max_ = -std::numeric_limits<double>::infinity();
    }

  private:
    u64 n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Fixed-bucket histogram over [lo, hi) with overflow/underflow buckets. */
class Histogram
{
  public:
    Histogram(double lo, double hi, std::size_t buckets)
        : lo_(lo), hi_(hi), counts_(buckets + 2, 0)
    {
        lva_assert(hi > lo && buckets > 0, "bad histogram bounds");
    }

    void
    sample(double x)
    {
        ++total_;
        if (x < lo_) {
            ++counts_.front();
        } else if (x >= hi_) {
            ++counts_.back();
        } else {
            const std::size_t inner = counts_.size() - 2;
            auto idx = static_cast<std::size_t>(
                (x - lo_) / (hi_ - lo_) * static_cast<double>(inner));
            if (idx >= inner)
                idx = inner - 1;
            counts_[idx + 1] += 1;
        }
    }

    u64 total() const { return total_; }
    u64 underflow() const { return counts_.front(); }
    u64 overflow() const { return counts_.back(); }
    std::size_t buckets() const { return counts_.size() - 2; }
    u64 bucketCount(std::size_t i) const { return counts_.at(i + 1); }
    double lo() const { return lo_; }
    double hi() const { return hi_; }

    void
    reset()
    {
        total_ = 0;
        std::fill(counts_.begin(), counts_.end(), u64(0));
    }

  private:
    double lo_;
    double hi_;
    std::vector<u64> counts_;
    u64 total_ = 0;
};

/** Geometric mean of a set of strictly positive values. */
double geomean(const std::vector<double> &xs);

} // namespace lva

#endif // LVA_UTIL_STATS_HH
