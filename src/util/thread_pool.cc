#include "util/thread_pool.hh"

#include <stdexcept>

#include "util/env_knob.hh"
#include "util/logging.hh"

namespace lva {

u32
ThreadPool::defaultJobs()
{
    // Strict decimal parse (util/env_knob.hh): "4abc" and "0x2" are
    // configuration mistakes, not 4 and 0 — they warn and fall back
    // to the hardware default.
    if (const u64 v = envKnobU64("LVA_JOBS", 0, 1, 256))
        return static_cast<u32>(v);
    const u32 hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool::ThreadPool(u32 threads)
{
    const u32 n = threads ? threads : defaultJobs();
    workers_.reserve(n);
    for (u32 i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    shutdown();
}

u64
ThreadPool::submitted() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return submitted_;
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            throw std::runtime_error(
                "ThreadPool::submit after shutdown");
        queue_.push_back(std::move(task));
        ++submitted_;
    }
    wake_.notify_one();
}

void
ThreadPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_)
            return;
        stopping_ = true;
    }
    wake_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            // Drain the queue even when stopping: shutdown() promises
            // every submitted future eventually becomes ready.
            if (queue_.empty())
                return;
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task(); // packaged_task captures exceptions in the future
    }
}

} // namespace lva
