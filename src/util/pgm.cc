#include "util/pgm.hh"

#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "util/logging.hh"

namespace lva {

GrayImage::GrayImage(u32 width, u32 height, u8 fill)
    : width_(width), height_(height),
      pixels_(static_cast<std::size_t>(width) * height, fill)
{
    lva_assert(width > 0 && height > 0, "empty image %ux%u", width, height);
}

u8
GrayImage::at(u32 x, u32 y) const
{
    lva_assert(x < width_ && y < height_, "pixel (%u,%u) out of bounds",
               x, y);
    return pixels_[static_cast<std::size_t>(y) * width_ + x];
}

void
GrayImage::set(u32 x, u32 y, u8 v)
{
    lva_assert(x < width_ && y < height_, "pixel (%u,%u) out of bounds",
               x, y);
    pixels_[static_cast<std::size_t>(y) * width_ + x] = v;
}

void
GrayImage::fillCircle(i32 cx, i32 cy, i32 radius, u8 v)
{
    const i32 r2 = radius * radius;
    for (i32 dy = -radius; dy <= radius; ++dy) {
        for (i32 dx = -radius; dx <= radius; ++dx) {
            if (dx * dx + dy * dy > r2)
                continue;
            const i32 x = cx + dx;
            const i32 y = cy + dy;
            if (x >= 0 && y >= 0 && x < static_cast<i32>(width_) &&
                y < static_cast<i32>(height_)) {
                set(static_cast<u32>(x), static_cast<u32>(y), v);
            }
        }
    }
}

void
GrayImage::drawLine(i32 x0, i32 y0, i32 x1, i32 y1, u8 v)
{
    const i32 dx = std::abs(x1 - x0);
    const i32 dy = -std::abs(y1 - y0);
    const i32 sx = x0 < x1 ? 1 : -1;
    const i32 sy = y0 < y1 ? 1 : -1;
    i32 err = dx + dy;
    while (true) {
        if (x0 >= 0 && y0 >= 0 && x0 < static_cast<i32>(width_) &&
            y0 < static_cast<i32>(height_)) {
            set(static_cast<u32>(x0), static_cast<u32>(y0), v);
        }
        if (x0 == x1 && y0 == y1)
            break;
        const i32 e2 = 2 * err;
        if (e2 >= dy) {
            err += dy;
            x0 += sx;
        }
        if (e2 <= dx) {
            err += dx;
            y0 += sy;
        }
    }
}

void
GrayImage::writePgm(const std::string &path) const
{
    const std::filesystem::path p(path);
    if (p.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(p.parent_path(), ec);
    }
    std::ofstream out(path, std::ios::binary);
    if (!out)
        lva_fatal("cannot open '%s' for writing", path.c_str());
    out << "P5\n" << width_ << ' ' << height_ << "\n255\n";
    out.write(reinterpret_cast<const char *>(pixels_.data()),
              static_cast<std::streamsize>(pixels_.size()));
}

double
GrayImage::meanAbsDiff(const GrayImage &a, const GrayImage &b)
{
    lva_assert(a.width() == b.width() && a.height() == b.height(),
               "image size mismatch");
    double sum = 0.0;
    for (std::size_t i = 0; i < a.pixels().size(); ++i)
        sum += std::abs(static_cast<int>(a.pixels()[i]) -
                        static_cast<int>(b.pixels()[i]));
    return sum / static_cast<double>(a.pixels().size());
}

} // namespace lva
