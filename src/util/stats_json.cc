#include "util/stats_json.hh"

#include <cinttypes>
#include <cstdio>

namespace lva {

const char *
statsJsonSchema()
{
    return "lva-stats-v1";
}

std::string
jsonQuote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    out.push_back('"');
    return out;
}

std::string
jsonDouble(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

namespace {

std::string
u64Json(u64 v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
    return buf;
}

} // namespace

std::string
snapshotToJson(const StatSnapshot &snap, int indent)
{
    const std::string pad(static_cast<std::size_t>(indent), ' ');
    const std::string pad1 = pad + "  ";
    std::string out = "{";
    bool first = true;
    for (const SnapEntry &e : snap.entries) {
        out += first ? "\n" : ",\n";
        first = false;
        out += pad1 + jsonQuote(e.path) + ": {\"type\": \"" +
               statTypeName(e.type) + "\"";
        if (!e.unit.empty())
            out += ", \"unit\": " + jsonQuote(e.unit);
        switch (e.type) {
          case StatType::Counter:
            out += ", \"value\": " + u64Json(e.count);
            break;
          case StatType::Gauge:
            out += ", \"value\": " + jsonDouble(e.gauge);
            break;
          case StatType::Histogram: {
            out += ", \"lo\": " + jsonDouble(e.histLo) +
                   ", \"hi\": " + jsonDouble(e.histHi) +
                   ", \"total\": " + u64Json(e.histTotal) +
                   ", \"underflow\": " + u64Json(e.histUnderflow) +
                   ", \"overflow\": " + u64Json(e.histOverflow) +
                   ", \"buckets\": [";
            for (std::size_t b = 0; b < e.histBuckets.size(); ++b) {
                if (b > 0)
                    out += ", ";
                out += u64Json(e.histBuckets[b]);
            }
            out += "]";
            break;
          }
        }
        out += "}";
    }
    out += first ? "}" : "\n" + pad + "}";
    return out;
}

} // namespace lva
