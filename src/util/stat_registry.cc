#include "util/stat_registry.hh"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "util/env_knob.hh"

namespace lva {

namespace {

/** Dotted path: non-empty alnum/underscore segments joined by '.'. */
bool
validPath(const std::string &path)
{
    if (path.empty() || path.front() == '.' || path.back() == '.')
        return false;
    bool prev_dot = false;
    for (char c : path) {
        if (c == '.') {
            if (prev_dot)
                return false;
            prev_dot = true;
            continue;
        }
        prev_dot = false;
        const bool ok = (c >= 'a' && c <= 'z') ||
                        (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_';
        if (!ok)
            return false;
    }
    return true;
}

} // namespace

const char *
statTypeName(StatType type)
{
    switch (type) {
      case StatType::Counter:
        return "counter";
      case StatType::Gauge:
        return "gauge";
      case StatType::Histogram:
        return "histogram";
    }
    return "?";
}

// --- StatSnapshot -----------------------------------------------------

const SnapEntry *
StatSnapshot::find(const std::string &path) const
{
    const auto it = std::lower_bound(
        entries.begin(), entries.end(), path,
        [](const SnapEntry &e, const std::string &p) {
            return e.path < p;
        });
    if (it == entries.end() || it->path != path)
        return nullptr;
    return &*it;
}

double
StatSnapshot::valueOf(const std::string &path) const
{
    const SnapEntry *e = find(path);
    if (e == nullptr)
        return 0.0;
    if (e->type == StatType::Counter)
        return static_cast<double>(e->count);
    if (e->type == StatType::Gauge)
        return e->gauge;
    return static_cast<double>(e->histTotal);
}

void
StatSnapshot::merge(const StatSnapshot &other)
{
    // Both sides are path-sorted; classic sorted merge keeps the
    // result sorted without a full re-sort.
    std::vector<SnapEntry> out;
    out.reserve(entries.size() + other.entries.size());
    std::size_t i = 0, j = 0;
    while (i < entries.size() || j < other.entries.size()) {
        if (j >= other.entries.size() ||
            (i < entries.size() &&
             entries[i].path < other.entries[j].path)) {
            out.push_back(std::move(entries[i++]));
            continue;
        }
        if (i >= entries.size() ||
            other.entries[j].path < entries[i].path) {
            out.push_back(other.entries[j++]);
            continue;
        }
        // Same path: fold.
        SnapEntry merged = std::move(entries[i++]);
        const SnapEntry &b = other.entries[j++];
        if (merged.type != b.type)
            throw std::invalid_argument(
                "stat merge type conflict at '" + merged.path + "': " +
                statTypeName(merged.type) + " vs " + statTypeName(b.type));
        switch (merged.type) {
          case StatType::Counter:
            merged.count += b.count;
            break;
          case StatType::Gauge:
            merged.gauge = b.gauge; // last merged wins
            break;
          case StatType::Histogram:
            if (merged.histLo != b.histLo || merged.histHi != b.histHi ||
                merged.histBuckets.size() != b.histBuckets.size())
                throw std::invalid_argument(
                    "histogram geometry conflict at '" + merged.path +
                    "'");
            merged.histTotal += b.histTotal;
            merged.histUnderflow += b.histUnderflow;
            merged.histOverflow += b.histOverflow;
            for (std::size_t k = 0; k < merged.histBuckets.size(); ++k)
                merged.histBuckets[k] += b.histBuckets[k];
            break;
        }
        out.push_back(std::move(merged));
    }
    entries = std::move(out);
}

void
StatSnapshot::setGauge(const std::string &path, double value,
                       std::string desc, std::string unit)
{
    const auto it = std::lower_bound(
        entries.begin(), entries.end(), path,
        [](const SnapEntry &e, const std::string &p) {
            return e.path < p;
        });
    if (it != entries.end() && it->path == path) {
        if (it->type != StatType::Gauge)
            throw std::invalid_argument(
                "setGauge on non-gauge '" + path + "'");
        it->gauge = value;
        return;
    }
    SnapEntry e;
    e.path = path;
    e.type = StatType::Gauge;
    e.desc = std::move(desc);
    e.unit = std::move(unit);
    e.gauge = value;
    entries.insert(it, std::move(e));
}

// --- EventTracer ------------------------------------------------------

EventTracer::EventTracer(std::size_t capacity) : capacity_(capacity)
{
    ring_.resize(capacity_);
}

void
EventTracer::record(const std::string &path, double value)
{
    if (capacity_ == 0)
        return;
    TracedEvent &slot = ring_[head_];
    slot.seq = seq_++;
    slot.path = path;
    slot.value = value;
    head_ = (head_ + 1) % capacity_;
}

std::vector<TracedEvent>
EventTracer::drain()
{
    std::vector<TracedEvent> out;
    if (capacity_ == 0)
        return out;
    const std::size_t retained =
        seq_ < capacity_ ? static_cast<std::size_t>(seq_) : capacity_;
    out.reserve(retained);
    // Oldest retained event sits at head_ once the ring has wrapped.
    const std::size_t start = seq_ < capacity_ ? 0 : head_;
    for (std::size_t k = 0; k < retained; ++k)
        out.push_back(std::move(ring_[(start + k) % capacity_]));
    for (auto &slot : ring_)
        slot = TracedEvent{};
    head_ = 0;
    seq_ = 0;
    return out;
}

std::size_t
EventTracer::capacityFromEnv()
{
    return static_cast<std::size_t>(
        envKnobU64("LVA_TRACE", 0, 0, 1u << 24));
}

// --- StatRegistry -----------------------------------------------------

StatRegistry::StatRegistry()
    : tracer_(EventTracer::capacityFromEnv())
{
}

StatRegistry::StatRegistry(std::size_t traceCapacity)
    : tracer_(traceCapacity)
{
}

StatRegistry::Entry &
StatRegistry::findOrCreate(const std::string &path, StatType type,
                           std::string &&desc, std::string &&unit)
{
    if (!validPath(path))
        throw std::invalid_argument("bad stat path '" + path + "'");
    const auto it = entries_.find(path);
    if (it != entries_.end()) {
        if (it->second.type != type)
            throw std::invalid_argument(
                "stat path collision at '" + path + "': registered as " +
                statTypeName(it->second.type) + ", requested as " +
                statTypeName(type));
        return it->second;
    }
    Entry entry;
    entry.type = type;
    entry.desc = std::move(desc);
    entry.unit = std::move(unit);
    return entries_.emplace(path, std::move(entry)).first->second;
}

Counter &
StatRegistry::counter(const std::string &path, std::string desc,
                      std::string unit)
{
    Entry &e = findOrCreate(path, StatType::Counter, std::move(desc),
                            std::move(unit));
    if (!e.counter)
        e.counter = std::make_unique<Counter>();
    return *e.counter;
}

Gauge &
StatRegistry::gauge(const std::string &path, std::string desc,
                    std::string unit)
{
    Entry &e = findOrCreate(path, StatType::Gauge, std::move(desc),
                            std::move(unit));
    if (!e.gauge)
        e.gauge = std::make_unique<Gauge>();
    return *e.gauge;
}

Histogram &
StatRegistry::histogram(const std::string &path, double lo, double hi,
                        std::size_t buckets, std::string desc,
                        std::string unit)
{
    Entry &e = findOrCreate(path, StatType::Histogram, std::move(desc),
                            std::move(unit));
    if (!e.histogram) {
        e.histogram = std::make_unique<Histogram>(lo, hi, buckets);
    } else if (e.histogram->lo() != lo || e.histogram->hi() != hi ||
               e.histogram->buckets() != buckets) {
        throw std::invalid_argument(
            "histogram geometry collision at '" + path + "'");
    }
    return *e.histogram;
}

bool
StatRegistry::contains(const std::string &path) const
{
    return entries_.count(path) != 0;
}

StatSnapshot
StatRegistry::snapshot() const
{
    StatSnapshot snap;
    snap.entries.reserve(entries_.size());
    for (const auto &[path, entry] : entries_) {
        SnapEntry e;
        e.path = path;
        e.type = entry.type;
        e.desc = entry.desc;
        e.unit = entry.unit;
        switch (entry.type) {
          case StatType::Counter:
            e.count = entry.counter->value();
            break;
          case StatType::Gauge:
            e.gauge = entry.gauge->value();
            break;
          case StatType::Histogram: {
            const Histogram &h = *entry.histogram;
            e.histLo = h.lo();
            e.histHi = h.hi();
            e.histTotal = h.total();
            e.histUnderflow = h.underflow();
            e.histOverflow = h.overflow();
            e.histBuckets.reserve(h.buckets());
            for (std::size_t b = 0; b < h.buckets(); ++b)
                e.histBuckets.push_back(h.bucketCount(b));
            break;
          }
        }
        snap.entries.push_back(std::move(e));
    }
    return snap;
}

void
StatRegistry::reset()
{
    for (auto &[path, entry] : entries_) {
        (void)path;
        switch (entry.type) {
          case StatType::Counter:
            entry.counter->reset();
            break;
          case StatType::Gauge:
            entry.gauge->reset();
            break;
          case StatType::Histogram:
            entry.histogram->reset();
            break;
        }
    }
}

std::string
StatRegistry::joinPath(const std::string &prefix,
                       const std::string &leaf)
{
    if (prefix.empty())
        return leaf;
    if (leaf.empty())
        return prefix;
    return prefix + "." + leaf;
}

} // namespace lva
