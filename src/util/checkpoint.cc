#include "util/checkpoint.hh"

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fcntl.h>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unistd.h>

#include "util/logging.hh"

namespace lva {

const char *
manifestSchema()
{
    return "lva-manifest-v1";
}

u64
fnv1a64(const std::string &data)
{
    u64 h = 14695981039346656037ull;
    for (const char c : data) {
        h ^= static_cast<u8>(c);
        h *= 1099511628211ull;
    }
    return h;
}

std::string
hexU64(u64 v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

// ---------------------------------------------------------------------
// Minimal JSON reader
// ---------------------------------------------------------------------

namespace {

class JsonReader
{
  public:
    explicit JsonReader(const std::string &text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = value();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters");
        return v;
    }

  private:
    [[noreturn]] void
    fail(const char *why)
    {
        throw std::runtime_error(
            "bad JSON at offset " + std::to_string(pos_) + ": " + why);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail("unexpected character");
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    consumeWord(const char *w)
    {
        const std::size_t n = std::strlen(w);
        if (text_.compare(pos_, n, w) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':  out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/':  out.push_back('/'); break;
              case 'n':  out.push_back('\n'); break;
              case 't':  out.push_back('\t'); break;
              case 'r':  out.push_back('\r'); break;
              case 'b':  out.push_back('\b'); break;
              case 'f':  out.push_back('\f'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("short \\u escape");
                const std::string hex = text_.substr(pos_, 4);
                pos_ += 4;
                char *end = nullptr;
                const unsigned long cp =
                    std::strtoul(hex.c_str(), &end, 16);
                if (end != hex.c_str() + 4)
                    fail("bad \\u escape");
                // Our writers only escape control bytes (< 0x20).
                if (cp > 0xff)
                    fail("unsupported \\u code point");
                out.push_back(static_cast<char>(cp));
                break;
              }
              default:
                fail("unknown escape");
            }
        }
    }

    JsonValue
    number()
    {
        const std::size_t start = pos_;
        if (consume('-')) {}
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("bad number");
        JsonValue v;
        v.type = JsonValue::Type::Number;
        v.text = text_.substr(start, pos_ - start);
        // Validate now so asDouble()/asU64() cannot fail later.
        char *end = nullptr;
        std::strtod(v.text.c_str(), &end);
        if (end != v.text.c_str() + v.text.size())
            fail("bad number");
        return v;
    }

    JsonValue
    value()
    {
        skipWs();
        const char c = peek();
        JsonValue v;
        if (c == '{') {
            ++pos_;
            v.type = JsonValue::Type::Object;
            skipWs();
            if (consume('}'))
                return v;
            for (;;) {
                skipWs();
                std::string key = string();
                skipWs();
                expect(':');
                v.members.emplace_back(std::move(key), value());
                skipWs();
                if (consume(','))
                    continue;
                expect('}');
                return v;
            }
        }
        if (c == '[') {
            ++pos_;
            v.type = JsonValue::Type::Array;
            skipWs();
            if (consume(']'))
                return v;
            for (;;) {
                v.items.push_back(value());
                skipWs();
                if (consume(','))
                    continue;
                expect(']');
                return v;
            }
        }
        if (c == '"') {
            v.type = JsonValue::Type::String;
            v.text = string();
            return v;
        }
        if (consumeWord("true")) {
            v.type = JsonValue::Type::Bool;
            v.boolean = true;
            return v;
        }
        if (consumeWord("false")) {
            v.type = JsonValue::Type::Bool;
            return v;
        }
        if (consumeWord("null"))
            return v;
        return number();
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

} // namespace

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &m : members)
        if (m.first == key)
            return &m.second;
    return nullptr;
}

const JsonValue &
JsonValue::at(const std::string &key) const
{
    const JsonValue *v = find(key);
    if (v == nullptr)
        throw std::runtime_error("missing JSON member '" + key + "'");
    return *v;
}

double
JsonValue::asDouble() const
{
    if (type != Type::Number)
        throw std::runtime_error("JSON value is not a number");
    return std::strtod(text.c_str(), nullptr);
}

u64
JsonValue::asU64() const
{
    if (type != Type::Number)
        throw std::runtime_error("JSON value is not a number");
    // strtoull alone would wrap "-3" and truncate "1.5"; a u64
    // counter is exactly a run of digits, so demand that (mirroring
    // the strict parse in env_knob).
    if (text.empty() ||
        text.find_first_not_of("0123456789") != std::string::npos)
        throw std::runtime_error("JSON number '" + text +
                                 "' is not an unsigned integer");
    errno = 0;
    char *end = nullptr;
    const unsigned long long v = std::strtoull(text.c_str(), &end, 10);
    if (errno == ERANGE || end != text.c_str() + text.size())
        throw std::runtime_error("JSON number '" + text +
                                 "' does not fit in a u64");
    return v;
}

const std::string &
JsonValue::asString() const
{
    if (type != Type::String)
        throw std::runtime_error("JSON value is not a string");
    return text;
}

JsonValue
parseJson(const std::string &text)
{
    return JsonReader(text).parse();
}

bool
writeAllFd(int fd, const void *data, std::size_t n, WriteFn writeFn)
{
    const char *p = static_cast<const char *>(data);
    while (n > 0) {
        const ssize_t wrote =
            writeFn != nullptr ? writeFn(fd, p, n) : ::write(fd, p, n);
        if (wrote < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (wrote == 0) {
            // A regular file should never return 0 for n > 0; treat
            // it as an I/O error rather than spinning forever.
            errno = EIO;
            return false;
        }
        p += wrote;
        n -= static_cast<std::size_t>(wrote);
    }
    return true;
}

// ---------------------------------------------------------------------
// CheckpointManifest
// ---------------------------------------------------------------------

namespace {

std::string
quoted(const std::string &s)
{
    // Digests and schema tags are plain [0-9a-z-]+; driver/context
    // strings come from our own code. Escape the two dangerous chars
    // anyway so a hostile label cannot corrupt the line format.
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

} // namespace

CheckpointManifest::CheckpointManifest(const std::string &path,
                                       const std::string &driver,
                                       const std::string &context,
                                       bool resume)
    : path_(path)
{
    const std::filesystem::path p(path_);
    if (p.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(p.parent_path(), ec);
    }

    if (resume)
        load(driver, context);

    fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT, 0644);
    if (fd_ < 0)
        lva_fatal("cannot open checkpoint manifest '%s': %s",
                  path_.c_str(), std::strerror(errno));
    // Drop the torn tail (or, when not resuming, the whole old file)
    // so appends always start after the last durable record.
    if (::ftruncate(fd_, static_cast<off_t>(goodBytes_)) != 0)
        lva_fatal("cannot truncate '%s': %s", path_.c_str(),
                  std::strerror(errno));
    if (::lseek(fd_, 0, SEEK_END) < 0)
        lva_fatal("cannot seek '%s': %s", path_.c_str(),
                  std::strerror(errno));

    if (goodBytes_ == 0) {
        const std::string header =
            "{\"schema\":" + quoted(manifestSchema()) +
            ",\"driver\":" + quoted(driver) +
            ",\"context\":" + quoted(context) + "}\n";
        if (!writeAllFd(fd_, header.data(), header.size()))
            lva_fatal("cannot write manifest header to '%s': %s",
                      path_.c_str(), std::strerror(errno));
        ::fsync(fd_);
        goodBytes_ = header.size();
    }
}

CheckpointManifest::~CheckpointManifest()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
CheckpointManifest::load(const std::string &driver,
                         const std::string &context)
{
    std::ifstream in(path_, std::ios::binary);
    if (!in.is_open())
        return; // nothing to resume from

    std::string line;
    u64 offset = 0;
    bool have_header = false;
    while (std::getline(in, line)) {
        // getline strips '\n'; a final line without one is a torn
        // write — eof with an unterminated line means stop.
        const bool terminated = !in.eof();
        if (!terminated) {
            lva_warn("checkpoint %s: ignoring torn trailing record",
                     path_.c_str());
            break;
        }
        JsonValue v;
        try {
            v = parseJson(line);
        } catch (const std::exception &e) {
            lva_warn("checkpoint %s: corrupt record ignored (%s)",
                     path_.c_str(), e.what());
            break;
        }
        if (!have_header) {
            const JsonValue *schema = v.find("schema");
            const JsonValue *drv = v.find("driver");
            const JsonValue *ctx = v.find("context");
            if (schema == nullptr || drv == nullptr || ctx == nullptr ||
                schema->asString() != manifestSchema() ||
                drv->asString() != driver ||
                ctx->asString() != context) {
                lva_warn("checkpoint %s: header mismatch "
                         "(stale schema/driver/context); starting "
                         "fresh", path_.c_str());
                records_.clear();
                goodBytes_ = 0;
                return;
            }
            have_header = true;
        } else {
            const JsonValue *digest = v.find("digest");
            const JsonValue *payload = v.find("payload");
            if (digest == nullptr || payload == nullptr) {
                lva_warn("checkpoint %s: record without "
                         "digest/payload ignored", path_.c_str());
                break;
            }
            // Keep the payload's original bytes: resumed points must
            // re-export byte-identically.
            const auto at = line.find("\"payload\":");
            std::string raw = line.substr(at + 10);
            lva_assert(!raw.empty() && raw.back() == '}',
                       "malformed manifest record survived parsing");
            raw.pop_back(); // the record object's closing brace
            records_[digest->asString()] = raw;
        }
        offset += line.size() + 1;
        goodBytes_ = offset;
    }
    loaded_ = records_.size();
}

const std::string *
CheckpointManifest::find(const std::string &digest) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = records_.find(digest);
    return it == records_.end() ? nullptr : &it->second;
}

void
CheckpointManifest::append(const std::string &digest,
                           const std::string &payloadJson)
{
    lva_assert(payloadJson.find('\n') == std::string::npos,
               "manifest payloads must be single-line JSON");
    const std::string line = "{\"digest\":" + quoted(digest) +
                             ",\"payload\":" + payloadJson + "}\n";
    std::lock_guard<std::mutex> lock(mutex_);
    if (!writeAllFd(fd_, line.data(), line.size()))
        lva_fatal("cannot append to checkpoint manifest '%s': %s",
                  path_.c_str(), std::strerror(errno));
    ::fsync(fd_);
    records_[digest] = payloadJson;
}

} // namespace lva
