/**
 * @file
 * Results-directory resolution: every artifact writer (CSV, PGM,
 * stats text, stats JSON) routes its path through resultsPath() so a
 * single LVA_RESULTS_DIR override redirects a whole run — e.g. tests
 * or CI sweeps that must not clobber checked-in results.
 */

#ifndef LVA_UTIL_RESULTS_DIR_HH
#define LVA_UTIL_RESULTS_DIR_HH

#include <string>

namespace lva {

/** $LVA_RESULTS_DIR when set and non-empty, else "results". */
std::string resultsDir();

/** @p rel anchored under resultsDir(), e.g. "stats/fig4.json". */
std::string resultsPath(const std::string &rel);

} // namespace lva

#endif // LVA_UTIL_RESULTS_DIR_HH
