/**
 * @file
 * Minimal localhost TCP transport + request framing for the
 * evaluation service (`lva-rpc-v1`, docs/serving.md).
 *
 * The serving layer deliberately speaks a tiny, fully specified wire
 * format instead of pulling in an RPC dependency: every message is
 * one *frame* — an 8-byte header (the 4-byte magic "LVA1" followed by
 * the payload length as a 4-byte big-endian integer) and then exactly
 * that many payload bytes (UTF-8 JSON at the layer above). A reader
 * can therefore always distinguish a clean end-of-stream (EOF at a
 * frame boundary) from a truncated or corrupt one (EOF mid-frame, bad
 * magic, oversize length), which is what lets the server drop a
 * malformed client without ever desynchronizing or blocking forever.
 *
 * Deadlines: every blocking operation takes a timeout in
 * milliseconds, enforced with poll(2) against a monotonic
 * (steady_clock) deadline — no wall-clock reads, so the lint rules of
 * DESIGN.md section 12 hold. Timeout 0 means "no deadline".
 *
 * Sends use MSG_NOSIGNAL: a peer that disconnects mid-response
 * surfaces as a NetError on the handler thread, never as a
 * process-wide SIGPIPE.
 */

#ifndef LVA_UTIL_NET_HH
#define LVA_UTIL_NET_HH

#include <stdexcept>
#include <string>

#include "util/types.hh"

namespace lva {

/** What every transport-layer failure (and deadline expiry) raises. */
class NetError : public std::runtime_error
{
  public:
    explicit NetError(const std::string &msg)
        : std::runtime_error(msg) {}
};

/** Largest frame payload either side accepts (64 MiB). */
std::size_t frameMaxBytes();

/** The 4 magic bytes opening every frame ("LVA1"). */
const char *frameMagic();

/**
 * One connected TCP socket (movable, closes on destruction).
 *
 * All I/O helpers loop until the full count is transferred, throwing
 * NetError on error, EOF mid-transfer, or deadline expiry.
 */
class TcpStream
{
  public:
    TcpStream() = default;

    /** Adopt an already-connected socket (takes ownership). */
    explicit TcpStream(int fd) : fd_(fd) {}

    ~TcpStream() { close(); }

    TcpStream(TcpStream &&other) noexcept : fd_(other.fd_)
    {
        other.fd_ = -1;
    }

    TcpStream &
    operator=(TcpStream &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            other.fd_ = -1;
        }
        return *this;
    }

    TcpStream(const TcpStream &) = delete;
    TcpStream &operator=(const TcpStream &) = delete;

    /**
     * Connect to @p host:@p port (numeric address, normally
     * "127.0.0.1") within @p timeoutMs; throws NetError on refusal
     * or deadline expiry.
     */
    static TcpStream connectTo(const std::string &host, u16 port,
                               u64 timeoutMs);

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    void close();

    /** Write all @p n bytes within @p timeoutMs. */
    void sendAll(const void *data, std::size_t n, u64 timeoutMs);

    /**
     * Read exactly @p n bytes within @p timeoutMs. @p eofOk permits a
     * clean EOF *before the first byte* (returns false); EOF after a
     * partial read always throws.
     */
    bool recvExact(void *data, std::size_t n, u64 timeoutMs,
                   bool eofOk = false);

  private:
    int fd_ = -1;
};

/**
 * A listening localhost socket. Construct with port 0 to let the
 * kernel pick an ephemeral port (tests, port-file discovery).
 */
class TcpListener
{
  public:
    /** Bind 127.0.0.1:@p port and listen; throws NetError. */
    explicit TcpListener(u16 port);

    ~TcpListener() { close(); }

    TcpListener(const TcpListener &) = delete;
    TcpListener &operator=(const TcpListener &) = delete;

    /** The bound port (resolved after an ephemeral bind). */
    u16 port() const { return port_; }

    bool valid() const { return fd_ >= 0; }

    /**
     * Accept one connection, waiting at most @p timeoutMs (0 = wait
     * forever). Returns an invalid stream on timeout; throws NetError
     * on a closed or broken listener.
     */
    TcpStream acceptOne(u64 timeoutMs);

    void close();

  private:
    int fd_ = -1;
    u16 port_ = 0;
};

/**
 * Write @p payload as one frame (magic + big-endian length + bytes).
 * Payloads larger than frameMaxBytes() are refused with NetError
 * before anything is sent.
 */
void writeFrame(TcpStream &stream, const std::string &payload,
                u64 timeoutMs);

/**
 * Read one frame into @p payload. Returns false on a clean EOF at a
 * frame boundary (the peer finished and closed). Throws NetError on
 * bad magic, an oversize length, EOF mid-frame, or deadline expiry.
 */
bool readFrame(TcpStream &stream, std::string &payload, u64 timeoutMs);

} // namespace lva

#endif // LVA_UTIL_NET_HH
