#include "util/stats.hh"

#include <cmath>

namespace lva {

double
geomean(const std::vector<double> &xs)
{
    if (xs.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double x : xs) {
        lva_assert(x > 0.0, "geomean requires positive values, got %f", x);
        log_sum += std::log(x);
    }
    return std::exp(log_sum / static_cast<double>(xs.size()));
}

} // namespace lva
