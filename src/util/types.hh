/**
 * @file
 * Fundamental scalar type aliases used throughout the LVA library.
 */

#ifndef LVA_UTIL_TYPES_HH
#define LVA_UTIL_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace lva {

/** Byte address in the simulated (virtual) address space. */
using Addr = std::uint64_t;

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Simulated tick / event time (same granularity as Cycle). */
using Tick = std::uint64_t;

/** Logical hardware thread / core identifier. */
using ThreadId = std::uint32_t;

/**
 * Static load-site identifier. Stands in for the instruction address (PC)
 * of a load; the workload layer assigns one per static load in the kernel
 * source, mirroring the distinct PC values that Pin would observe.
 */
using LoadSiteId = std::uint32_t;

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/** Sentinel for an invalid / unmapped address. */
constexpr Addr invalidAddr = ~Addr(0);

} // namespace lva

#endif // LVA_UTIL_TYPES_HH
