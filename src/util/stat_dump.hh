/**
 * @file
 * gem5-style statistics dump: flat dotted names, one line per stat,
 * value column, '#'-prefixed description — greppable and diffable.
 */

#ifndef LVA_UTIL_STAT_DUMP_HH
#define LVA_UTIL_STAT_DUMP_HH

#include <cstdio>
#include <string>
#include <vector>

namespace lva {

/** One named statistic. */
struct StatEntry
{
    std::string name;  ///< dotted path, e.g. "core0.l1.misses"
    double value = 0.0;
    std::string desc;
};

/**
 * An ordered collection of statistics with gem5-style text output:
 *
 *   system.l1.misses             1014536  # L1 load misses
 */
class StatDump
{
  public:
    void
    add(std::string name, double value, std::string desc = "")
    {
        entries_.push_back(
            StatEntry{std::move(name), value, std::move(desc)});
    }

    const std::vector<StatEntry> &entries() const { return entries_; }

    /** Value lookup by exact name; 0.0 when absent (tests). */
    double valueOf(const std::string &name) const;

    /** Render to @p out in gem5 stats-file format. */
    void print(std::FILE *out = stdout) const;

    /** Write to a file; creates parent directories. */
    void writeFile(const std::string &path) const;

  private:
    std::vector<StatEntry> entries_;
};

} // namespace lva

#endif // LVA_UTIL_STAT_DUMP_HH
