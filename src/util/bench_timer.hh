/**
 * @file
 * Wall-clock timing for the bench drivers.
 *
 * Every driver wraps its work in a BenchTimer, which on destruction
 * prints a uniformly formatted elapsed-seconds line:
 *
 *     [time] fig4_ghb_mpki: 12.345 s (jobs=8)
 *
 * scripts/run_all.sh parses these lines into results/bench_times.json
 * so successive PRs have a wall-clock trajectory to regress against.
 */

#ifndef LVA_UTIL_BENCH_TIMER_HH
#define LVA_UTIL_BENCH_TIMER_HH

#include <chrono>
#include <cstdio>
#include <string>

#include "util/thread_pool.hh"
#include "util/types.hh"

namespace lva {

/** Scoped wall-clock timer reporting on destruction. */
class BenchTimer
{
  public:
    explicit BenchTimer(std::string name)
        : name_(std::move(name)), start_(Clock::now())
    {
    }

    ~BenchTimer() { report(); }

    BenchTimer(const BenchTimer &) = delete;
    BenchTimer &operator=(const BenchTimer &) = delete;

    /** Seconds elapsed since construction. */
    double
    seconds() const
    {
        const auto d = Clock::now() - start_;
        return std::chrono::duration<double>(d).count();
    }

    /** Print the machine-parsable elapsed line (idempotent). */
    void
    report()
    {
        if (reported_)
            return;
        reported_ = true;
        std::printf("[time] %s: %.3f s (jobs=%u)\n", name_.c_str(),
                    seconds(), ThreadPool::defaultJobs());
    }

  private:
    using Clock = std::chrono::steady_clock;

    std::string name_;
    Clock::time_point start_;
    bool reported_ = false;
};

} // namespace lva

#endif // LVA_UTIL_BENCH_TIMER_HH
