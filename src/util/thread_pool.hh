/**
 * @file
 * Fixed-size worker pool with a futures-based submission API.
 *
 * Tasks are executed in FIFO submission order by a fixed set of worker
 * threads; submit() returns a std::future carrying the task's result
 * (or its exception). With a single worker the pool degenerates to a
 * strict serial queue, which the sweep engine uses to reproduce the
 * historical serial evaluation order exactly.
 */

#ifndef LVA_UTIL_THREAD_POOL_HH
#define LVA_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/types.hh"

namespace lva {

/**
 * A fixed pool of worker threads draining one FIFO task queue.
 *
 * Lifecycle: workers start in the constructor and are joined in the
 * destructor, which first waits for every queued task to finish.
 * submit() is thread-safe; submitting after shutdown() throws.
 */
class ThreadPool
{
  public:
    /** @param threads worker count; 0 means defaultJobs() */
    explicit ThreadPool(u32 threads = 0);

    /** Drains the queue, then stops and joins all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    u32 size() const { return static_cast<u32>(workers_.size()); }

    /** Tasks submitted over the pool's lifetime. */
    u64 submitted() const;

    /**
     * Enqueue @p fn for execution; the returned future yields its
     * result or rethrows its exception.
     */
    template <typename F>
    auto
    submit(F &&fn) -> std::future<std::invoke_result_t<F>>
    {
        using R = std::invoke_result_t<F>;
        // packaged_task is move-only but std::function requires
        // copyability, so the task lives behind a shared_ptr.
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> result = task->get_future();
        enqueue([task]() { (*task)(); });
        return result;
    }

    /** Stop accepting work, finish queued tasks and join workers. */
    void shutdown();

    /**
     * Parallelism requested via the environment: LVA_JOBS if set to a
     * sane value, otherwise std::thread::hardware_concurrency().
     * LVA_JOBS=1 selects the serial path.
     */
    static u32 defaultJobs();

  private:
    void enqueue(std::function<void()> task);
    void workerLoop();

    mutable std::mutex mutex_;
    std::condition_variable wake_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    u64 submitted_ = 0;
    bool stopping_ = false;
};

} // namespace lva

#endif // LVA_UTIL_THREAD_POOL_HH
