#include "util/fault.hh"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <new>
#include <thread>

#include "util/logging.hh"

namespace lva {

namespace {

/**
 * The armed plan. Mutable global state is acceptable here (and only
 * here, in src/util/): the plan is written once at startup or by a
 * test hook, and hit counting must be shared across sweep workers to
 * give 'firstN'/'atN' triggers a single deterministic count.
 */
std::mutex plan_mutex;
std::vector<FaultEntry> plan;
std::atomic<bool> armed{false};
bool env_loaded = false;

[[noreturn]] void
badSpec(const std::string &spec, const std::string &why)
{
    throw std::invalid_argument("bad LVA_FAULT spec '" + spec +
                                "': " + why);
}

/** Parse a decimal operand; rejects empty and trailing garbage. */
unsigned long
parseCount(const std::string &spec, const std::string &text)
{
    if (text.empty())
        badSpec(spec, "missing count");
    char *end = nullptr;
    const unsigned long v = std::strtoul(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0')
        badSpec(spec, "bad count '" + text + "'");
    return v;
}

FaultEntry
parseEntry(const std::string &spec, const std::string &text)
{
    FaultEntry e;
    const auto eq = text.find('=');
    if (eq == std::string::npos || eq == 0)
        badSpec(spec, "entry '" + text + "' is not site=action");
    e.site = text.substr(0, eq);
    if (!e.site.empty() && e.site.back() == '*') {
        e.wildcard = true;
        e.site.pop_back();
    }

    std::string action = text.substr(eq + 1);
    const auto at = action.find('@');
    std::string trigger = "always";
    if (at != std::string::npos) {
        trigger = action.substr(at + 1);
        action = action.substr(0, at);
    }

    const auto colon = action.find(':');
    std::string kind = action.substr(0, colon);
    if (kind == "throw") {
        e.kind = FaultEntry::Kind::Throw;
    } else if (kind == "abort") {
        e.kind = FaultEntry::Kind::Abort;
    } else if (kind == "allocfail") {
        e.kind = FaultEntry::Kind::AllocFail;
    } else if (kind == "delay") {
        e.kind = FaultEntry::Kind::Delay;
    } else {
        badSpec(spec, "unknown action '" + kind + "'");
    }

    if (e.kind == FaultEntry::Kind::Delay) {
        if (colon == std::string::npos)
            badSpec(spec, "delay needs ':<ms>'");
        e.delayMs = parseCount(spec, action.substr(colon + 1));
    } else if (colon != std::string::npos) {
        badSpec(spec, "'" + kind + "' takes no ':' argument");
    }

    if (trigger == "always") {
        e.trigger = FaultEntry::Trigger::Always;
    } else if (trigger.rfind("first", 0) == 0) {
        e.trigger = FaultEntry::Trigger::First;
        e.n = parseCount(spec, trigger.substr(5));
    } else if (trigger.rfind("at", 0) == 0) {
        e.trigger = FaultEntry::Trigger::At;
        e.n = parseCount(spec, trigger.substr(2));
    } else {
        badSpec(spec, "unknown trigger '" + trigger + "'");
    }
    if (e.trigger != FaultEntry::Trigger::Always && e.n == 0)
        badSpec(spec, "trigger count must be >= 1");
    return e;
}

bool
matches(const FaultEntry &e, const std::string &site)
{
    if (e.wildcard)
        return site.compare(0, e.site.size(), e.site) == 0;
    return site == e.site;
}

/** Load LVA_FAULT once; later faultPoint() calls skip the getenv. */
void
loadEnvLocked()
{
    if (env_loaded)
        return;
    env_loaded = true;
    // String-valued spec, parsed by parseFaultSpec below.
    // lva-audit: allow(knob-unvalidated)
    const char *env = std::getenv("LVA_FAULT");
    if (env == nullptr || env[0] == '\0')
        return;
    plan = parseFaultSpec(env); // a bad env spec must fail loudly
    armed.store(!plan.empty(), std::memory_order_release);
}

} // namespace

std::vector<FaultEntry>
parseFaultSpec(const std::string &spec)
{
    std::vector<FaultEntry> entries;
    std::size_t start = 0;
    while (start <= spec.size()) {
        auto end = spec.find(',', start);
        if (end == std::string::npos)
            end = spec.size();
        const std::string item = spec.substr(start, end - start);
        if (!item.empty())
            entries.push_back(parseEntry(spec, item));
        start = end + 1;
    }
    return entries;
}

int
faultExitCode()
{
    return 53;
}

bool
faultsArmed()
{
    if (armed.load(std::memory_order_acquire))
        return true;
    std::lock_guard<std::mutex> lock(plan_mutex);
    loadEnvLocked();
    return armed.load(std::memory_order_acquire);
}

void
setFaultSpecForTest(const std::string &spec)
{
    std::vector<FaultEntry> next = parseFaultSpec(spec); // may throw
    std::lock_guard<std::mutex> lock(plan_mutex);
    env_loaded = true; // a test-set plan overrides the environment
    plan = std::move(next);
    armed.store(!plan.empty(), std::memory_order_release);
}

void
faultPoint(const std::string &site)
{
    if (!faultsArmed())
        return;

    // Decide under the lock, act outside it: delays must not stall
    // other workers' site checks, and thrown faults must not hold it.
    FaultEntry::Kind kind = FaultEntry::Kind::Throw;
    unsigned long delay_ms = 0;
    bool fire = false;
    {
        std::lock_guard<std::mutex> lock(plan_mutex);
        for (FaultEntry &e : plan) {
            if (!matches(e, site))
                continue;
            ++e.hits;
            const bool hit =
                e.trigger == FaultEntry::Trigger::Always ||
                (e.trigger == FaultEntry::Trigger::First &&
                 e.hits <= e.n) ||
                (e.trigger == FaultEntry::Trigger::At && e.hits == e.n);
            if (hit && !fire) {
                fire = true;
                kind = e.kind;
                delay_ms = e.delayMs;
            }
        }
    }
    if (!fire)
        return;

    switch (kind) {
      case FaultEntry::Kind::Throw:
        throw FaultInjected(site);
      case FaultEntry::Kind::AllocFail:
        throw std::bad_alloc();
      case FaultEntry::Kind::Delay:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delay_ms));
        return;
      case FaultEntry::Kind::Abort:
        // Simulate a kill: no atexit handlers, no flushes, no unwind.
        // Partially-written artifacts (e.g. a checkpoint manifest
        // line) are left exactly as a real crash would leave them.
        std::fprintf(stderr, "fault: injected abort at %s\n",
                     site.c_str());
        std::_Exit(faultExitCode());
    }
}

} // namespace lva
