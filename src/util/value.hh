/**
 * @file
 * Tagged scalar value as seen by the load value approximator.
 *
 * The approximator operates on the data returned by load instructions,
 * which in the evaluated workloads is either integer pixel/coordinate data
 * or single/double-precision floating point. Value carries the bit pattern
 * together with its type so that history buffers, hashing, windowed
 * confidence comparison and the AVERAGE computation function can all be
 * expressed uniformly.
 */

#ifndef LVA_UTIL_VALUE_HH
#define LVA_UTIL_VALUE_HH

#include <cmath>
#include <cstring>
#include <span>
#include <string>

#include "util/logging.hh"
#include "util/types.hh"

namespace lva {

/** Scalar type of an approximable datum. */
enum class ValueKind : u8 {
    Int64,   ///< signed integer data (pixels, coordinates)
    Float32, ///< single-precision floating point
    Float64, ///< double-precision floating point
};

/** Human-readable name of a ValueKind. */
const char *valueKindName(ValueKind kind);

/**
 * A typed scalar value.
 *
 * Stored as a 64-bit pattern plus a kind tag; conversions are explicit.
 */
class Value
{
  public:
    Value() : bits_(0), kind_(ValueKind::Int64) {}

    static Value
    fromInt(i64 v)
    {
        Value out;
        out.kind_ = ValueKind::Int64;
        std::memcpy(&out.bits_, &v, sizeof(v));
        return out;
    }

    static Value
    fromFloat(float v)
    {
        Value out;
        out.kind_ = ValueKind::Float32;
        u32 b32;
        std::memcpy(&b32, &v, sizeof(v));
        out.bits_ = b32;
        return out;
    }

    static Value
    fromDouble(double v)
    {
        Value out;
        out.kind_ = ValueKind::Float64;
        std::memcpy(&out.bits_, &v, sizeof(v));
        return out;
    }

    /** Build a Value of @p kind from a real number (rounding for Int64). */
    static Value ofKind(ValueKind kind, double v);

    ValueKind kind() const { return kind_; }

    /** Raw 64-bit pattern (Float32 occupies the low 32 bits). */
    u64 bits() const { return bits_; }

    i64
    asInt() const
    {
        i64 v;
        std::memcpy(&v, &bits_, sizeof(v));
        return v;
    }

    float
    asFloat() const
    {
        const u32 b32 = static_cast<u32>(bits_);
        float v;
        std::memcpy(&v, &b32, sizeof(v));
        return v;
    }

    double
    asDouble() const
    {
        double v;
        std::memcpy(&v, &bits_, sizeof(v));
        return v;
    }

    /** Numeric value as a double regardless of kind. */
    double toReal() const;

    /**
     * Bit pattern used for context hashing, with @p mantissa_drop low
     * mantissa bits zeroed for floating-point kinds (paper section VII-B:
     * truncating the mantissa improves floating-point value locality).
     * Integer values are returned unchanged.
     */
    u64 hashBits(u32 mantissa_drop) const;

    /** Exact bit-pattern equality (also requires matching kinds). */
    bool
    exactlyEquals(const Value &other) const
    {
        return kind_ == other.kind_ && bits_ == other.bits_;
    }

    std::string toString() const;

  private:
    u64 bits_;
    ValueKind kind_;
};

/**
 * Relative error |approx - actual| / |actual|.
 *
 * When actual == 0 the error is 0 if approx is also 0 and +infinity
 * otherwise; NaN inputs yield +infinity.
 */
double relativeError(double approx, double actual);

/**
 * Relaxed confidence window test (paper section III-B): is @p approx within
 * +/- @p window (fraction, e.g. 0.10) of @p actual? A window of 0 demands
 * bitwise-exact equality, matching traditional value prediction.
 */
bool withinWindow(const Value &approx, const Value &actual, double window);

/**
 * Indexed-accessor estimator kernels: the single implementation of the
 * computation functions f, shared by the std::span overloads below and
 * by the approximator's in-place SoA ring iteration. @p at maps
 * [0, n) to values oldest-first. Floating-point summation order is
 * part of the exported-bytes contract (DESIGN.md section 10), so every
 * caller must present the same oldest-first order; funnelling both the
 * span and ring paths through one kernel keeps them bit-identical by
 * construction.
 */
template <typename At>
Value
averageAt(u32 n, At at)
{
    lva_assert(n > 0, "averageOf on empty history");
    double sum = 0.0;
    ValueKind kind = ValueKind::Int64;
    for (u32 i = 0; i < n; ++i) {
        const Value v = at(i);
        if (i == 0)
            kind = v.kind();
        sum += v.toReal();
    }
    return Value::ofKind(kind, sum / static_cast<double>(n));
}

/** LAST kernel: most recent value. */
template <typename At>
Value
lastAt(u32 n, At at)
{
    lva_assert(n > 0, "lastOf on empty history");
    return at(n - 1);
}

/** STRIDE kernel: newest value plus the mean successive delta. */
template <typename At>
Value
strideAt(u32 n, At at)
{
    lva_assert(n > 0, "strideOf on empty history");
    if (n == 1)
        return at(0);
    const Value front = at(0);
    const double first = front.toReal();
    const double last = at(n - 1).toReal();
    const double mean_delta =
        (last - first) / static_cast<double>(n - 1);
    return Value::ofKind(front.kind(), last + mean_delta);
}

/**
 * The AVERAGE computation function f over a local history buffer
 * (paper Table II). Integer averages round to nearest.
 *
 * @pre values is non-empty and all entries share one kind.
 */
Value averageOf(std::span<const Value> values);

/** Most recent value (LAST computation function, design-space ablation). */
Value lastOf(std::span<const Value> values);

/**
 * Stride extrapolation (STRIDE computation function, ablation): newest
 * value plus the mean successive delta.
 */
Value strideOf(std::span<const Value> values);

} // namespace lva

#endif // LVA_UTIL_VALUE_HH
