#include "util/logging.hh"

#include <cstdarg>
#include <cstdio>

namespace lva {

namespace {

// Thread-local so one worker's isolation cannot mask an invariant
// violation on another thread (mutable state is legal in src/util/).
thread_local int isolation_depth = 0;

} // namespace

ScopedFailureIsolation::ScopedFailureIsolation()
{
    ++isolation_depth;
}

ScopedFailureIsolation::~ScopedFailureIsolation()
{
    --isolation_depth;
}

bool
failureIsolationActive()
{
    return isolation_depth > 0;
}

namespace detail {

std::string
vformat(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    const int needed = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    std::string out;
    if (needed > 0) {
        out.resize(static_cast<std::size_t>(needed));
        // vsnprintf writes the terminating NUL over out[needed]; since
        // C++11 std::string guarantees data()[size()] is addressable.
        std::vsnprintf(out.data(), static_cast<std::size_t>(needed) + 1,
                       fmt, args_copy);
    }
    va_end(args_copy);
    return out;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    if (failureIsolationActive())
        throw IsolatedError(vformat("panic: %s (at %s:%d)",
                                    msg.c_str(), file, line));
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    if (failureIsolationActive())
        throw IsolatedError(vformat("fatal: %s (at %s:%d)",
                                    msg.c_str(), file, line));
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace lva
