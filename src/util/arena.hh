/**
 * @file
 * Deterministic virtual-address allocation for simulated data regions.
 *
 * Workload data lives in ordinary host containers; the simulated memory
 * system only ever sees synthetic virtual addresses. Allocating them from
 * an arena (rather than using host pointers) makes every cache access
 * stream bit-identical across runs and platforms.
 */

#ifndef LVA_UTIL_ARENA_HH
#define LVA_UTIL_ARENA_HH

#include "util/logging.hh"
#include "util/types.hh"

namespace lva {

/**
 * Bump allocator over a simulated virtual address space.
 *
 * Regions are aligned to cache-block boundaries so that distinct regions
 * never share a block (which would entangle their miss behaviour).
 */
class VirtualArena
{
  public:
    explicit VirtualArena(Addr base = 0x1000'0000, u32 block_bytes = 64)
        : base_(base), next_(base), blockBytes_(block_bytes)
    {
        lva_assert(block_bytes > 0 &&
                   (block_bytes & (block_bytes - 1)) == 0,
                   "block size %u not a power of two", block_bytes);
    }

    /** Allocate @p bytes, returning the block-aligned base address. */
    Addr
    allocate(u64 bytes)
    {
        const Addr base = next_;
        const u64 mask = blockBytes_ - 1;
        next_ += (bytes + mask) & ~mask;
        return base;
    }

    /** Total bytes of address space handed out so far. */
    u64 bytesAllocated() const { return next_ - base_; }

    Addr base() const { return base_; }
    Addr next() const { return next_; }

  private:
    Addr base_;
    Addr next_;
    u32 blockBytes_;
};

} // namespace lva

#endif // LVA_UTIL_ARENA_HH
