/**
 * @file
 * Hierarchical statistics registry: the single accounting substrate
 * behind every simulator counter (docs/metrics.md is the catalog).
 *
 * A StatRegistry owns typed Counter / Gauge / Histogram objects keyed
 * by dotted path ("thread0.l1.misses"). Components register their
 * stats at construction and keep direct references, so the hot path
 * pays exactly what the old hand-rolled structs paid: one increment
 * through a reference. snapshot() freezes every stat into plain data,
 * sorted by path; snapshots merge deterministically (counters and
 * histogram buckets sum, gauges last-writer-wins in merge order),
 * which is what keeps the LVA_JOBS=N JSON export bit-identical to the
 * serial run.
 *
 * Registries are thread-confined by design: one per simulation
 * instance (ApproxMemory, FullSystemSim), never shared across sweep
 * points, so no locking is needed anywhere on the hot path.
 *
 * An optional ring-buffer event tracer rides along, disabled unless
 * the LVA_TRACE environment knob gives it a capacity.
 */

#ifndef LVA_UTIL_STAT_REGISTRY_HH
#define LVA_UTIL_STAT_REGISTRY_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/stats.hh"
#include "util/types.hh"

namespace lva {

/** The registrable stat kinds. */
enum class StatType : u8 { Counter, Gauge, Histogram };

const char *statTypeName(StatType type);

/** One stat frozen into plain data. */
struct SnapEntry
{
    std::string path;
    StatType type = StatType::Counter;
    std::string desc;
    std::string unit;

    u64 count = 0;      ///< Counter value
    double gauge = 0.0; ///< Gauge value

    // Histogram payload (type == Histogram only).
    double histLo = 0.0;
    double histHi = 0.0;
    u64 histTotal = 0;
    u64 histUnderflow = 0;
    u64 histOverflow = 0;
    std::vector<u64> histBuckets;
};

/**
 * An ordered (path-sorted) snapshot of a registry, safe to copy
 * across threads and to merge with other snapshots.
 */
struct StatSnapshot
{
    std::vector<SnapEntry> entries; ///< always sorted by path

    bool empty() const { return entries.empty(); }

    /** Entry lookup by exact path; nullptr when absent. */
    const SnapEntry *find(const std::string &path) const;

    /** Counter/gauge value by path; 0 when absent (tests, reports). */
    double valueOf(const std::string &path) const;

    /**
     * Fold @p other into this snapshot: counters and histogram
     * buckets sum, gauges take @p other's value (last merged wins —
     * callers must merge in a deterministic order). Paths only in
     * @p other are inserted. Type or histogram-geometry conflicts
     * throw std::invalid_argument.
     */
    void merge(const StatSnapshot &other);

    /** Insert or overwrite a gauge entry (derived metrics). */
    void setGauge(const std::string &path, double value,
                  std::string desc = "", std::string unit = "");
};

/** One recorded trace event. */
struct TracedEvent
{
    u64 seq = 0;       ///< monotonically increasing record index
    std::string path;  ///< dotted event name
    double value = 0.0;
};

/**
 * Fixed-capacity ring buffer of trace events; capacity 0 disables
 * recording entirely (record() is a branch and a return).
 */
class EventTracer
{
  public:
    /** @param capacity ring size; 0 = disabled */
    explicit EventTracer(std::size_t capacity);

    bool enabled() const { return capacity_ > 0; }
    std::size_t capacity() const { return capacity_; }

    /** Total events ever recorded (including overwritten ones). */
    u64 recorded() const { return seq_; }

    void record(const std::string &path, double value);

    /** The retained events, oldest first; clears the ring. */
    std::vector<TracedEvent> drain();

    /** Ring capacity from the LVA_TRACE env knob; 0 when unset/off. */
    static std::size_t capacityFromEnv();

  private:
    std::size_t capacity_;
    std::size_t head_ = 0; ///< next write slot
    u64 seq_ = 0;
    std::vector<TracedEvent> ring_;
};

/**
 * The registry. register-or-get semantics: asking for an existing
 * path of the same type (and, for histograms, the same geometry)
 * returns the existing object; a path collision across types throws
 * std::invalid_argument, as does a malformed path.
 */
class StatRegistry
{
  public:
    /** Tracer capacity from LVA_TRACE. */
    StatRegistry();

    /** Explicit tracer capacity (tests; 0 = tracing off). */
    explicit StatRegistry(std::size_t traceCapacity);

    StatRegistry(const StatRegistry &) = delete;
    StatRegistry &operator=(const StatRegistry &) = delete;

    Counter &counter(const std::string &path, std::string desc = "",
                     std::string unit = "events");
    Gauge &gauge(const std::string &path, std::string desc = "",
                 std::string unit = "");
    Histogram &histogram(const std::string &path, double lo, double hi,
                         std::size_t buckets, std::string desc = "",
                         std::string unit = "");

    bool contains(const std::string &path) const;
    std::size_t size() const { return entries_.size(); }

    /** Freeze every stat, sorted by path. */
    StatSnapshot snapshot() const;

    /** Reset every registered stat (registration is kept). */
    void reset();

    EventTracer &tracer() { return tracer_; }
    const EventTracer &tracer() const { return tracer_; }

    /**
     * Cheap hot-path guard: callers that must compute the traced
     * value (e.g. a Value -> double conversion) check this first so
     * the conversion is skipped entirely when tracing is off.
     */
    bool tracingEnabled() const { return tracer_.enabled(); }

    /** Record a trace event if tracing is enabled. */
    void
    trace(const std::string &path, double value)
    {
        if (tracer_.enabled())
            tracer_.record(path, value);
    }

    /**
     * Join two dotted-path fragments; either side may be empty
     * ("thread0" + "l1.hits" -> "thread0.l1.hits").
     */
    static std::string joinPath(const std::string &prefix,
                                const std::string &leaf);

  private:
    struct Entry
    {
        StatType type;
        std::string desc;
        std::string unit;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Entry &findOrCreate(const std::string &path, StatType type,
                        std::string &&desc, std::string &&unit);

    std::map<std::string, Entry> entries_; ///< sorted -> snapshot order
    EventTracer tracer_;
};

} // namespace lva

#endif // LVA_UTIL_STAT_REGISTRY_HH
