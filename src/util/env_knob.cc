#include "util/env_knob.hh"

#include <cctype>
#include <cstdlib>

#include "util/logging.hh"

namespace lva {
namespace {

/** Shared "is there a value to parse at all" gate. */
const char *
knobValue(const char *name)
{
    const char *env = std::getenv(name);
    if (env == nullptr || *env == '\0')
        return nullptr;
    return env;
}

} // namespace

u64
envKnobU64(const char *name, u64 fallback, u64 lo, u64 hi)
{
    const char *env = knobValue(name);
    if (env == nullptr)
        return fallback;
    // Leading signs and whitespace are rejected up front: strtoull
    // happily wraps "-1" to 2^64-1, which is exactly the silent
    // coercion this helper exists to kill.
    if (!std::isdigit(static_cast<unsigned char>(env[0]))) {
        lva_warn("ignoring bad %s='%s' (want a decimal in [%llu, %llu])",
                 name, env, static_cast<unsigned long long>(lo),
                 static_cast<unsigned long long>(hi));
        return fallback;
    }
    char *end = nullptr;
    const unsigned long long v = std::strtoull(env, &end, 10);
    if (end == env || *end != '\0' || v < lo || v > hi) {
        lva_warn("ignoring bad %s='%s' (want a decimal in [%llu, %llu])",
                 name, env, static_cast<unsigned long long>(lo),
                 static_cast<unsigned long long>(hi));
        return fallback;
    }
    return static_cast<u64>(v);
}

double
envKnobF64(const char *name, double fallback, double lo, double hi)
{
    const char *env = knobValue(name);
    if (env == nullptr)
        return fallback;
    char *end = nullptr;
    const double v = std::strtod(env, &end);
    if (end == env || *end != '\0' || !(v >= lo) || !(v <= hi)) {
        lva_warn("ignoring bad %s='%s' (want a number in [%g, %g])",
                 name, env, lo, hi);
        return fallback;
    }
    return v;
}

} // namespace lva
