/**
 * @file
 * Aligned console table and CSV emission used by the benchmark harnesses
 * to print paper-style rows.
 */

#ifndef LVA_UTIL_TABLE_HH
#define LVA_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace lva {

/**
 * A simple column-aligned text table that can also be saved as CSV.
 *
 * Usage:
 * @code
 *   Table t({"benchmark", "MPKI", "error"});
 *   t.addRow({"canneal", "12.50", "3.1%"});
 *   t.print();
 *   t.writeCsv("results/table1.csv");
 * @endcode
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> header);

    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns to stdout, with an optional title. */
    void print(const std::string &title = "") const;

    /** Write as CSV; creates parent directories as needed. */
    void writeCsv(const std::string &path) const;

    std::size_t rows() const { return rows_.size(); }
    std::size_t columns() const { return header_.size(); }

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with @p decimals digits after the point. */
std::string fmtDouble(double v, int decimals = 3);

/** Format a fraction (0.126) as a percent string ("12.6%"). */
std::string fmtPercent(double fraction, int decimals = 1);

} // namespace lva

#endif // LVA_UTIL_TABLE_HH
