/**
 * @file
 * Deterministic fault-injection harness for robustness testing.
 *
 * Production code marks interesting places with named *sites*
 * (faultPoint("sweep.point.3")); the LVA_FAULT environment knob arms
 * actions at those sites, so tests can prove that isolation, retry,
 * resume and partial export behave as documented without patching the
 * code under test. Unset (the default) the whole harness collapses to
 * one relaxed atomic load per site.
 *
 * Spec grammar (DESIGN.md section 13):
 *
 *   LVA_FAULT ::= entry (',' entry)*
 *   entry     ::= site '=' action
 *   site      ::= dotted name; a trailing '*' makes it a prefix match
 *   action    ::= kind [':' ms] ['@' trigger]
 *   kind      ::= 'throw' | 'abort' | 'allocfail' | 'delay'
 *   trigger   ::= 'always' | 'first' N | 'at' N      (default: always)
 *
 * Kinds: 'throw' raises FaultInjected (a std::runtime_error);
 * 'allocfail' raises std::bad_alloc; 'delay' sleeps for the given
 * milliseconds (':ms' is required for delay, rejected otherwise);
 * 'abort' terminates the process immediately via _Exit(faultExitCode())
 * — no atexit handlers, no stream flushes — simulating a kill/OOM in
 * the middle of a sweep. Triggers count *matches of that entry*:
 * 'first3' fires on the first three hits, 'at3' on the third hit only.
 *
 * Examples:
 *   LVA_FAULT=sweep.point.2=abort               crash at sweep point 2
 *   LVA_FAULT=sweep.point.0=throw@first2        2 transient failures
 *   LVA_FAULT=eval.golden.*=delay:50@at1        slow first golden run
 *
 * Everything here is deterministic: hit counts are per-entry and sites
 * are hit at deterministic program points, so a given spec produces
 * the same faults on every run (and, for index-keyed sites, for any
 * LVA_JOBS value).
 */

#ifndef LVA_UTIL_FAULT_HH
#define LVA_UTIL_FAULT_HH

#include <stdexcept>
#include <string>
#include <vector>

namespace lva {

/** The exception 'throw' actions raise; carries the site name. */
class FaultInjected : public std::runtime_error
{
  public:
    explicit FaultInjected(const std::string &site)
        : std::runtime_error("injected fault at " + site) {}
};

/** One parsed LVA_FAULT entry (exposed for tests and diagnostics). */
struct FaultEntry
{
    enum class Kind : int { Throw, Abort, AllocFail, Delay };
    enum class Trigger : int { Always, First, At };

    std::string site;        ///< site name; prefix match if wildcard
    bool wildcard = false;   ///< true when the spec ended with '*'
    Kind kind = Kind::Throw;
    Trigger trigger = Trigger::Always;
    unsigned long n = 0;     ///< trigger operand (first N / at N)
    unsigned long delayMs = 0;
    unsigned long hits = 0;  ///< matches so far (guarded by plan lock)
};

/**
 * Parse a fault spec; throws std::invalid_argument with a pointed
 * message on bad grammar. An empty spec yields an empty plan.
 */
std::vector<FaultEntry> parseFaultSpec(const std::string &spec);

/** Fast check: is any fault entry armed at all? */
bool faultsArmed();

/**
 * Hit a named site. Never does anything unless LVA_FAULT (or
 * setFaultSpecForTest) armed an entry matching @p site, in which case
 * it may throw, sleep, or terminate the process as configured.
 */
void faultPoint(const std::string &site);

/**
 * Replace the active plan (tests). Throws std::invalid_argument on a
 * bad spec, leaving the previous plan armed. Passing "" disarms.
 */
void setFaultSpecForTest(const std::string &spec);

/** The _Exit status used by 'abort' actions (recognizable in tests). */
int faultExitCode();

} // namespace lva

#endif // LVA_UTIL_FAULT_HH
