#include "util/results_dir.hh"

#include <cstdlib>

namespace lva {

std::string
resultsDir()
{
    // String-valued path knob; any non-empty value is legal.
    // lva-audit: allow(knob-unvalidated)
    const char *env = std::getenv("LVA_RESULTS_DIR");
    if (env != nullptr && env[0] != '\0')
        return env;
    return "results";
}

std::string
resultsPath(const std::string &rel)
{
    return resultsDir() + "/" + rel;
}

} // namespace lva
