#include "util/results_dir.hh"

#include <cstdlib>

namespace lva {

std::string
resultsDir()
{
    const char *env = std::getenv("LVA_RESULTS_DIR");
    if (env != nullptr && env[0] != '\0')
        return env;
    return "results";
}

std::string
resultsPath(const std::string &rel)
{
    return resultsDir() + "/" + rel;
}

} // namespace lva
