/**
 * @file
 * Deterministic JSON rendering of stat snapshots — the byte layer
 * under the versioned results/stats export (schema in docs/metrics.md).
 *
 * Output bytes depend only on the snapshot contents: entries are
 * path-sorted, integers print as integers, and doubles print with
 * "%.17g" (round-trip exact), so a parallel sweep serializes
 * identically to a serial one.
 */

#ifndef LVA_UTIL_STATS_JSON_HH
#define LVA_UTIL_STATS_JSON_HH

#include <string>

#include "util/stat_registry.hh"

namespace lva {

/** The current export schema version tag. */
const char *statsJsonSchema();

/** JSON string literal (quotes + escapes applied). */
std::string jsonQuote(const std::string &s);

/** Shortest round-trip-exact rendering of a double. */
std::string jsonDouble(double v);

/**
 * Render @p snap as a JSON object mapping each path to its typed
 * entry, indented by @p indent spaces per level.
 */
std::string snapshotToJson(const StatSnapshot &snap, int indent = 4);

} // namespace lva

#endif // LVA_UTIL_STATS_JSON_HH
