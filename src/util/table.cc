#include "util/table.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "util/logging.hh"

namespace lva {

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    lva_assert(!header_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> cells)
{
    lva_assert(cells.size() == header_.size(),
               "row has %zu cells, header has %zu",
               cells.size(), header_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(const std::string &title) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    if (!title.empty())
        std::printf("\n== %s ==\n", title.c_str());

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            std::printf("%s%-*s", c ? "  " : "",
                        static_cast<int>(widths[c]), row[c].c_str());
        std::printf("\n");
    };

    print_row(header_);
    std::size_t total = header_.size() ? 2 * (header_.size() - 1) : 0;
    for (auto w : widths)
        total += w;
    std::printf("%s\n", std::string(total, '-').c_str());
    for (const auto &row : rows_)
        print_row(row);
}

namespace {

std::string
csvEscape(const std::string &cell)
{
    if (cell.find_first_of(",\"\n") == std::string::npos)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

} // namespace

void
Table::writeCsv(const std::string &path) const
{
    const std::filesystem::path p(path);
    if (p.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(p.parent_path(), ec);
    }
    std::ofstream out(path);
    if (!out)
        lva_fatal("cannot open '%s' for writing", path.c_str());

    auto write_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c)
                out << ',';
            out << csvEscape(row[c]);
        }
        out << '\n';
    };
    write_row(header_);
    for (const auto &row : rows_)
        write_row(row);
}

std::string
fmtDouble(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
fmtPercent(double fraction, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

} // namespace lva
