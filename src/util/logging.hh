/**
 * @file
 * Status and error reporting helpers in the gem5 tradition.
 *
 * panic()  - an internal invariant was violated (library bug); aborts.
 * fatal()  - the simulation cannot continue due to user input; exits.
 * warn()   - something is suspicious but simulation continues.
 * inform() - plain status output.
 */

#ifndef LVA_UTIL_LOGGING_HH
#define LVA_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace lva {

/**
 * What panic()/fatal() raise while a ScopedFailureIsolation is
 * active on the calling thread (instead of terminating the process).
 */
class IsolatedError : public std::runtime_error
{
  public:
    explicit IsolatedError(const std::string &msg)
        : std::runtime_error(msg) {}
};

/**
 * RAII: while alive, lva_panic / lva_assert / lva_fatal on *this
 * thread* throw IsolatedError instead of aborting or exiting the
 * process. The sweep engine arms this around each point so one bad
 * configuration (a tripped invariant, an unusable config) becomes a
 * structured per-point failure rather than the loss of the whole
 * batch. Nestable; never copyable.
 */
class ScopedFailureIsolation
{
  public:
    ScopedFailureIsolation();
    ~ScopedFailureIsolation();

    ScopedFailureIsolation(const ScopedFailureIsolation &) = delete;
    ScopedFailureIsolation &
    operator=(const ScopedFailureIsolation &) = delete;
};

/** True when the calling thread is inside a ScopedFailureIsolation. */
bool failureIsolationActive();

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

/** printf-style formatting into a std::string. */
std::string vformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

} // namespace lva

/** Abort with a message: an internal invariant was violated. */
#define lva_panic(...) \
    ::lva::detail::panicImpl(__FILE__, __LINE__, \
                             ::lva::detail::vformat(__VA_ARGS__))

/** Exit with a message: user-provided configuration is unusable. */
#define lva_fatal(...) \
    ::lva::detail::fatalImpl(__FILE__, __LINE__, \
                             ::lva::detail::vformat(__VA_ARGS__))

/** Print a warning and continue. */
#define lva_warn(...) \
    ::lva::detail::warnImpl(::lva::detail::vformat(__VA_ARGS__))

/** Print an informational status line. */
#define lva_inform(...) \
    ::lva::detail::informImpl(::lva::detail::vformat(__VA_ARGS__))

/** Panic unless the given condition holds. */
#define lva_assert(cond, ...) \
    do { \
        if (!(cond)) { \
            lva_panic("assertion '%s' failed: %s", #cond, \
                      ::lva::detail::vformat(__VA_ARGS__).c_str()); \
        } \
    } while (0)

#endif // LVA_UTIL_LOGGING_HH
