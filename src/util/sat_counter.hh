/**
 * @file
 * Saturating counters, the building block of confidence estimation.
 */

#ifndef LVA_UTIL_SAT_COUNTER_HH
#define LVA_UTIL_SAT_COUNTER_HH

#include "util/logging.hh"
#include "util/types.hh"

namespace lva {

/**
 * Signed saturating counter clamped to [min, max].
 *
 * The paper's confidence counter is a 4-bit signed saturating counter in
 * [-8, 7]; an approximation is made while the counter is >= 0.
 */
class SignedSatCounter
{
  public:
    SignedSatCounter(i32 min_value, i32 max_value, i32 initial = 0)
        : min_(min_value), max_(max_value), value_(initial)
    {
        lva_assert(min_value <= max_value,
                   "counter range [%d, %d] is empty", min_value, max_value);
        lva_assert(initial >= min_value && initial <= max_value,
                   "initial %d outside [%d, %d]",
                   initial, min_value, max_value);
    }

    /** Construct from a bit width: an n-bit counter spans [-2^(n-1), 2^(n-1)-1]. */
    static SignedSatCounter
    fromBits(u32 bits, i32 initial = 0)
    {
        lva_assert(bits >= 1 && bits <= 31, "bad counter width %u", bits);
        const i32 half = i32(1) << (bits - 1);
        return SignedSatCounter(-half, half - 1, initial);
    }

    /**
     * Increment by n, saturating at the maximum. A negative n steps
     * the other way (saturating at the minimum): the old clamp test
     * `value_ > max_ - n` moved the rail in the wrong direction for
     * negative steps and could overflow, letting the value escape
     * [min, max].
     */
    void increment(i32 n = 1) { bump(static_cast<i64>(n)); }

    /** Decrement by n, saturating at the minimum (negative n: max). */
    void decrement(i32 n = 1) { bump(-static_cast<i64>(n)); }

    void reset(i32 v) { value_ = (v < min_) ? min_ : (v > max_) ? max_ : v; }

    i32 value() const { return value_; }
    i32 min() const { return min_; }
    i32 max() const { return max_; }
    bool saturatedHigh() const { return value_ == max_; }
    bool saturatedLow() const { return value_ == min_; }

  private:
    /**
     * Shared saturating step. i64 arithmetic cannot overflow for any
     * i32 operands (|value_ + n| < 2^33), so both rails clamp exactly.
     */
    void
    bump(i64 n)
    {
        const i64 next = static_cast<i64>(value_) + n;
        value_ = next > max_   ? max_
                 : next < min_ ? min_
                               : static_cast<i32>(next);
    }

    i32 min_;
    i32 max_;
    i32 value_;
};

/**
 * Unsigned down-counter used for the approximation degree: initialized to
 * the maximum degree, decremented per approximation, fetch at zero.
 */
class DegreeCounter
{
  public:
    explicit DegreeCounter(u32 max_degree = 0)
        : max_(max_degree), value_(max_degree)
    {}

    /** Current remaining uses before a training fetch is required. */
    u32 value() const { return value_; }
    u32 maxDegree() const { return max_; }

    bool atZero() const { return value_ == 0; }

    /** Consume one approximation; returns true if a fetch is now due. */
    bool
    consume()
    {
        if (value_ == 0)
            return true;
        --value_;
        return false;
    }

    /** Reset after a training fetch. */
    void reset() { value_ = max_; }

    /** Change the configured maximum degree (resets the count). */
    void
    setMaxDegree(u32 d)
    {
        max_ = d;
        value_ = d;
    }

  private:
    u32 max_;
    u32 value_;
};

} // namespace lva

#endif // LVA_UTIL_SAT_COUNTER_HH
