#include "util/stat_dump.hh"

#include <filesystem>

#include "util/logging.hh"

namespace lva {

double
StatDump::valueOf(const std::string &name) const
{
    for (const auto &entry : entries_)
        if (entry.name == name)
            return entry.value;
    return 0.0;
}

void
StatDump::print(std::FILE *out) const
{
    std::size_t width = 0;
    for (const auto &entry : entries_)
        width = std::max(width, entry.name.size());

    for (const auto &entry : entries_) {
        // Integers print without a fraction, like gem5.
        if (entry.value ==
                static_cast<double>(static_cast<long long>(entry.value))) {
            std::fprintf(out, "%-*s  %14lld", static_cast<int>(width),
                         entry.name.c_str(),
                         static_cast<long long>(entry.value));
        } else {
            std::fprintf(out, "%-*s  %14.6f", static_cast<int>(width),
                         entry.name.c_str(), entry.value);
        }
        if (!entry.desc.empty())
            std::fprintf(out, "  # %s", entry.desc.c_str());
        std::fprintf(out, "\n");
    }
}

void
StatDump::writeFile(const std::string &path) const
{
    const std::filesystem::path p(path);
    if (p.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(p.parent_path(), ec);
    }
    std::FILE *out = std::fopen(path.c_str(), "w");
    if (out == nullptr)
        lva_fatal("cannot open '%s' for writing", path.c_str());
    print(out);
    std::fclose(out);
}

} // namespace lva
