#include "util/value.hh"

#include <limits>

#include "util/logging.hh"

namespace lva {

const char *
valueKindName(ValueKind kind)
{
    switch (kind) {
      case ValueKind::Int64:
        return "Int64";
      case ValueKind::Float32:
        return "Float32";
      case ValueKind::Float64:
        return "Float64";
    }
    return "?";
}

Value
Value::ofKind(ValueKind kind, double v)
{
    switch (kind) {
      case ValueKind::Int64:
        return fromInt(static_cast<i64>(std::llround(v)));
      case ValueKind::Float32:
        return fromFloat(static_cast<float>(v));
      case ValueKind::Float64:
        return fromDouble(v);
    }
    lva_panic("bad ValueKind %d", static_cast<int>(kind));
}

double
Value::toReal() const
{
    switch (kind_) {
      case ValueKind::Int64:
        return static_cast<double>(asInt());
      case ValueKind::Float32:
        return static_cast<double>(asFloat());
      case ValueKind::Float64:
        return asDouble();
    }
    lva_panic("bad ValueKind %d", static_cast<int>(kind_));
}

u64
Value::hashBits(u32 mantissa_drop) const
{
    if (mantissa_drop == 0)
        return bits_;
    switch (kind_) {
      case ValueKind::Int64:
        return bits_;
      case ValueKind::Float32: {
        const u32 drop = mantissa_drop > 23 ? 23 : mantissa_drop;
        return bits_ & ~((u64(1) << drop) - 1);
      }
      case ValueKind::Float64: {
        const u32 drop = mantissa_drop > 52 ? 52 : mantissa_drop;
        return bits_ & ~((u64(1) << drop) - 1);
      }
    }
    lva_panic("bad ValueKind %d", static_cast<int>(kind_));
}

std::string
Value::toString() const
{
    switch (kind_) {
      case ValueKind::Int64:
        return std::to_string(asInt());
      case ValueKind::Float32:
        return std::to_string(asFloat());
      case ValueKind::Float64:
        return std::to_string(asDouble());
    }
    return "?";
}

double
relativeError(double approx, double actual)
{
    if (std::isnan(approx) || std::isnan(actual))
        return std::numeric_limits<double>::infinity();
    if (actual == 0.0)
        return approx == 0.0 ? 0.0
                             : std::numeric_limits<double>::infinity();
    return std::fabs(approx - actual) / std::fabs(actual);
}

bool
withinWindow(const Value &approx, const Value &actual, double window)
{
    if (window <= 0.0)
        return approx.exactlyEquals(actual);
    if (std::isinf(window))
        return true;
    return relativeError(approx.toReal(), actual.toReal()) <= window;
}

Value
averageOf(std::span<const Value> values)
{
    return averageAt(static_cast<u32>(values.size()),
                     [values](u32 i) { return values[i]; });
}

Value
lastOf(std::span<const Value> values)
{
    return lastAt(static_cast<u32>(values.size()),
                  [values](u32 i) { return values[i]; });
}

Value
strideOf(std::span<const Value> values)
{
    return strideAt(static_cast<u32>(values.size()),
                    [values](u32 i) { return values[i]; });
}

} // namespace lva
