/**
 * @file
 * Append-only, fsync'd sweep checkpoint manifests (lva-manifest-v1).
 *
 * A manifest records each completed sweep point as one JSON line so a
 * crashed or killed sweep can restart and skip the work it already
 * finished. The file layout is:
 *
 *   {"schema":"lva-manifest-v1","driver":"<d>","context":"<key>"}
 *   {"digest":"<16-hex>","payload":{...}}
 *   {"digest":"<16-hex>","payload":{...}}
 *   ...
 *
 * The header binds the manifest to a (driver, context) pair; the
 * context key encodes everything that invalidates cached results
 * (seeds, scale, export schema — see sweepContextKey in eval/sweep).
 * Records are keyed by a stable digest of the sweep point; payloads
 * are opaque one-line JSON values owned by the caller.
 *
 * Crash tolerance: every append is flushed and fsync'd before it is
 * reported durable, and the loader stops at the first incomplete or
 * unparseable line (the torn tail a kill leaves behind), truncating
 * the file back to the last good record before appending resumes.
 * A header mismatch (different driver/context/schema) discards the
 * stale manifest with a warning rather than resuming wrong results.
 */

#ifndef LVA_UTIL_CHECKPOINT_HH
#define LVA_UTIL_CHECKPOINT_HH

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/types.hh"

namespace lva {

/** The manifest schema tag written into every header. */
const char *manifestSchema();

/** Signature of a write(2)-shaped function (injectable for tests). */
using WriteFn = ssize_t (*)(int fd, const void *buf, std::size_t n);

/**
 * Write all @p n bytes of @p data to @p fd, retrying interrupted
 * (EINTR) and short writes until everything is on its way to the
 * kernel. Returns false on a hard error with errno describing it.
 * @p writeFn substitutes for ::write in tests; nullptr uses the
 * real syscall.
 */
bool writeAllFd(int fd, const void *data, std::size_t n,
                WriteFn writeFn = nullptr);

/** FNV-1a 64-bit over @p data (stable across platforms/runs). */
u64 fnv1a64(const std::string &data);

/** @p v as 16 lowercase hex digits (manifest digest rendering). */
std::string hexU64(u64 v);

/**
 * A minimal JSON value, sufficient to read back what the manifest
 * and stats writers emit. Numbers keep their source text so u64
 * counters round-trip exactly (no detour through double).
 */
class JsonValue
{
  public:
    enum class Type : int { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    std::string text; ///< number source text, or string contents
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> members;

    bool isObject() const { return type == Type::Object; }
    bool isArray() const { return type == Type::Array; }

    /** Member lookup (objects only); nullptr when absent. */
    const JsonValue *find(const std::string &key) const;

    /** Member that must exist; throws std::runtime_error otherwise. */
    const JsonValue &at(const std::string &key) const;

    double asDouble() const;  ///< number as double (%.17g round-trip)
    u64 asU64() const;        ///< number as exact u64
    const std::string &asString() const;
};

/**
 * Parse @p text as one JSON value; throws std::runtime_error with an
 * offset on malformed input. Accepts exactly the subset our writers
 * produce (objects, arrays, strings with the jsonQuote escapes,
 * numbers, true/false/null).
 */
JsonValue parseJson(const std::string &text);

/**
 * One open manifest: loaded records plus an append handle.
 *
 * append() is thread-safe (sweep workers complete in arbitrary
 * order); loading happens once in the constructor.
 */
class CheckpointManifest
{
  public:
    /**
     * Open @p path for the given (driver, context).
     *
     * With @p resume true an existing file with a matching header is
     * loaded (completed records become visible through find()) and
     * appends continue after the last good record; a missing file, a
     * mismatched header, or a corrupt file starts fresh with a
     * warning. With @p resume false any existing file is discarded.
     */
    CheckpointManifest(const std::string &path,
                       const std::string &driver,
                       const std::string &context, bool resume);

    ~CheckpointManifest();

    CheckpointManifest(const CheckpointManifest &) = delete;
    CheckpointManifest &operator=(const CheckpointManifest &) = delete;

    const std::string &path() const { return path_; }

    /** Records restored from disk by the constructor. */
    std::size_t loadedCount() const { return loaded_; }

    /** Payload JSON for @p digest, or nullptr if not recorded. */
    const std::string *find(const std::string &digest) const;

    /**
     * Durably record @p digest -> @p payloadJson (one line; the
     * payload must not contain raw newlines). Flushed and fsync'd
     * before returning. Thread-safe.
     */
    void append(const std::string &digest,
                const std::string &payloadJson);

  private:
    void load(const std::string &driver, const std::string &context);

    std::string path_;
    mutable std::mutex mutex_;
    std::map<std::string, std::string> records_;
    std::size_t loaded_ = 0;
    u64 goodBytes_ = 0; ///< offset of the last durable byte on load
    int fd_ = -1;
};

} // namespace lva

#endif // LVA_UTIL_CHECKPOINT_HH
