/**
 * @file
 * Shared strict parsing for LVA_* environment knobs.
 *
 * Every numeric knob used to hand-roll its own getenv + strtol (or
 * worse, atoi), so "LVA_FLEET_SIZE=2x" silently became 2 and
 * "LVA_SERVE_QUEUE=-1" wrapped to a huge queue.  These helpers give
 * all knobs the discipline PR 4 gave LVA_JOBS: a strict decimal (or
 * decimal-float) parse that rejects trailing junk, signs and
 * out-of-range values with a warning, falling back to the documented
 * default instead of coercing.
 *
 * tools/lva_audit's knob-unvalidated rule enforces that production
 * code reads LVA_* knobs through these helpers (string-valued knobs
 * carry an explicit `lva-audit: allow(knob-unvalidated)` annotation
 * instead).
 */

#ifndef LVA_UTIL_ENV_KNOB_HH
#define LVA_UTIL_ENV_KNOB_HH

#include "util/types.hh"

namespace lva {

/**
 * Read an unsigned integer knob.
 *
 * Unset or empty returns @p fallback silently.  A set value must be
 * pure decimal digits (no sign, no hex, no trailing characters) and
 * lie in [@p lo, @p hi]; anything else warns once per call and
 * returns @p fallback.
 */
u64 envKnobU64(const char *name, u64 fallback, u64 lo, u64 hi);

/**
 * Read a floating-point knob.  Same contract as envKnobU64: strict
 * strtod parse (no trailing characters), range-checked against
 * [@p lo, @p hi], warn + fallback on anything malformed.
 */
double envKnobF64(const char *name, double fallback, double lo,
                  double hi);

} // namespace lva

#endif // LVA_UTIL_ENV_KNOB_HH
