#include "cpu/trace_io.hh"

#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/logging.hh"

namespace lva {

namespace {

constexpr char magic[8] = {'L', 'V', 'A', 'T', 'R', 'C', '1', '\n'};

/** On-disk event record (packed, fixed layout). */
struct PackedEvent
{
    u64 addr;
    u64 valueBits;
    u32 pc;
    u32 instrBefore;
    u8 kind;
    u8 flags;
    u8 pad[6];
};
static_assert(sizeof(PackedEvent) == 32, "packed layout drifted");

template <typename T>
void
writePod(std::ofstream &out, const T &v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(T));
}

template <typename T>
T
readPod(std::ifstream &in, const std::string &path)
{
    T v;
    in.read(reinterpret_cast<char *>(&v), sizeof(T));
    if (!in)
        lva_fatal("trace file '%s' is truncated", path.c_str());
    return v;
}

Value
valueFrom(u8 kind, u64 bits)
{
    switch (static_cast<ValueKind>(kind)) {
      case ValueKind::Int64: {
        i64 v;
        std::memcpy(&v, &bits, sizeof(v));
        return Value::fromInt(v);
      }
      case ValueKind::Float32: {
        const u32 b = static_cast<u32>(bits);
        float f;
        std::memcpy(&f, &b, sizeof(f));
        return Value::fromFloat(f);
      }
      case ValueKind::Float64: {
        double d;
        std::memcpy(&d, &bits, sizeof(d));
        return Value::fromDouble(d);
      }
    }
    lva_fatal("trace contains unknown value kind %u", kind);
}

} // namespace

void
writeTraces(const std::vector<ThreadTrace> &traces,
            const std::string &path)
{
    const std::filesystem::path p(path);
    if (p.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(p.parent_path(), ec);
    }
    std::ofstream out(path, std::ios::binary);
    if (!out)
        lva_fatal("cannot open '%s' for writing", path.c_str());

    out.write(magic, sizeof(magic));
    writePod(out, static_cast<u32>(traces.size()));
    for (const auto &trace : traces) {
        writePod(out, static_cast<u64>(trace.size()));
        for (const TraceEvent &ev : trace) {
            PackedEvent rec{};
            rec.addr = ev.addr;
            rec.valueBits = ev.value.bits();
            rec.pc = ev.pc;
            rec.instrBefore = ev.instrBefore;
            rec.kind = static_cast<u8>(ev.value.kind());
            rec.flags = static_cast<u8>((ev.isLoad ? 1 : 0) |
                                        (ev.approximable ? 2 : 0) |
                                        (ev.dependsOnPrev ? 4 : 0));
            writePod(out, rec);
        }
    }
    if (!out)
        lva_fatal("write to '%s' failed", path.c_str());
}

std::vector<ThreadTrace>
readTraces(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        lva_fatal("cannot open trace file '%s'", path.c_str());

    char got[8];
    in.read(got, sizeof(got));
    if (!in || std::memcmp(got, magic, sizeof(magic)) != 0)
        lva_fatal("'%s' is not an LVA trace file", path.c_str());

    const u32 threads = readPod<u32>(in, path);
    if (threads == 0 || threads > 1024)
        lva_fatal("trace file '%s' has bad thread count %u",
                  path.c_str(), threads);

    std::vector<ThreadTrace> traces(threads);
    for (auto &trace : traces) {
        const u64 count = readPod<u64>(in, path);
        trace.reserve(count);
        for (u64 i = 0; i < count; ++i) {
            const auto rec = readPod<PackedEvent>(in, path);
            TraceEvent ev;
            ev.addr = rec.addr;
            ev.value = valueFrom(rec.kind, rec.valueBits);
            ev.pc = rec.pc;
            ev.instrBefore = rec.instrBefore;
            ev.isLoad = (rec.flags & 1) != 0;
            ev.approximable = (rec.flags & 2) != 0;
            ev.dependsOnPrev = (rec.flags & 4) != 0;
            trace.push_back(ev);
        }
    }
    return traces;
}

} // namespace lva
