#include "cpu/trace.hh"

#include "util/logging.hh"

namespace lva {

TraceRecorder::TraceRecorder(u32 threads)
    : traces_(threads), pendingInstr_(threads, 0)
{
    lva_assert(threads > 0, "need at least one thread");
}

Value
TraceRecorder::loadVirtual(ThreadId tid, LoadSiteId pc, Addr addr,
                    const Value &precise, bool approximable,
                    bool dependent)
{
    lva_assert(tid < traces_.size(), "thread %u out of range", tid);
    TraceEvent ev;
    ev.addr = addr;
    ev.value = precise;
    ev.pc = pc;
    ev.instrBefore = pendingInstr_[tid];
    ev.isLoad = true;
    ev.approximable = approximable;
    ev.dependsOnPrev = dependent;
    traces_[tid].push_back(ev);
    pendingInstr_[tid] = 0;
    return precise;
}

void
TraceRecorder::store(ThreadId tid, LoadSiteId pc, Addr addr)
{
    lva_assert(tid < traces_.size(), "thread %u out of range", tid);
    TraceEvent ev;
    ev.addr = addr;
    ev.pc = pc;
    ev.instrBefore = pendingInstr_[tid];
    ev.isLoad = false;
    ev.approximable = false;
    traces_[tid].push_back(ev);
    pendingInstr_[tid] = 0;
}

void
TraceRecorder::tickInstructions(ThreadId tid, u64 n)
{
    lva_assert(tid < traces_.size(), "thread %u out of range", tid);
    pendingInstr_[tid] += static_cast<u32>(n);
}

u64
TraceRecorder::totalEvents() const
{
    u64 total = 0;
    for (const auto &trace : traces_)
        total += trace.size();
    return total;
}

u64
TraceRecorder::totalInstructions() const
{
    u64 total = 0;
    for (const auto &trace : traces_) {
        total += trace.size(); // each access is one instruction
        for (const auto &ev : trace)
            total += ev.instrBefore;
    }
    return total;
}

} // namespace lva
