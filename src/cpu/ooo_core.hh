/**
 * @file
 * ROB-occupancy timing model of a 4-wide out-of-order core.
 *
 * This is the FeS2 substitute for the paper's phase-2 evaluation. It
 * captures the first-order effect LVA exploits: a demand load miss only
 * stalls the core once the reorder buffer fills behind it, so miss
 * latency overlaps with up to robEntries instructions of useful work
 * (and with other misses — memory-level parallelism). Approximated
 * loads retire like hits; their training fetches occupy the memory
 * system but never block retirement.
 */

#ifndef LVA_CPU_OOO_CORE_HH
#define LVA_CPU_OOO_CORE_HH

#include <deque>

#include "util/types.hh"

namespace lva {

/** Core microarchitecture parameters (paper Table II). */
struct CoreConfig
{
    u32 width = 4;      ///< issue/retire width (instructions per cycle)
    u32 robEntries = 32;///< reorder buffer capacity
};

/**
 * Per-core replay state: virtual time plus the outstanding demand-miss
 * window that models ROB occupancy.
 */
class OoOCore
{
  public:
    explicit OoOCore(const CoreConfig &config) : config_(config) {}

    /** Current core time in cycles. */
    double now() const { return now_; }

    /** Retire @p n ordinary instructions (bandwidth-limited). */
    void
    executeInstructions(u64 n)
    {
        while (n > 0) {
            drainCompleted();
            if (!outstanding_.empty()) {
                const PendingMiss &oldest = outstanding_.front();
                // The missing load occupies one ROB entry, so only
                // robEntries - 1 younger instructions fit behind it.
                const u64 limit =
                    oldest.instrIndex + config_.robEntries - 1;
                if (instrCount_ >= limit) {
                    // ROB full behind the oldest miss: stall until
                    // its data arrives.
                    if (now_ < oldest.completion)
                        now_ = oldest.completion;
                    outstanding_.pop_front();
                    continue;
                }
                const u64 room = limit - instrCount_;
                const u64 take = n < room ? n : room;
                advance(take);
                n -= take;
                continue;
            }
            advance(n);
            n = 0;
        }
    }

    /** An L1 load hit (or an approximated load): retires like any
     *  single instruction. */
    void
    loadHit()
    {
        executeInstructions(1);
    }

    /**
     * A demand load miss issued now, completing at @p completion.
     * The core continues past it until the ROB fills.
     */
    void
    demandMiss(double completion)
    {
        executeInstructions(1);
        outstanding_.push_back(PendingMiss{instrCount_, completion});
        ++demandMisses_;
        const double latency = completion - now_;
        missLatencySum_ += latency > 0.0 ? latency : 0.0;
    }

    /** A store: retires without stalling (store buffer). */
    void
    storeAccess()
    {
        executeInstructions(1);
    }

    /** Force the core clock forward (external backpressure, e.g. a
     *  full store buffer). */
    void
    advanceTo(double t)
    {
        if (t > now_)
            now_ = t;
    }

    /** Wait for all outstanding misses (end of trace). */
    void
    drainAll()
    {
        while (!outstanding_.empty()) {
            if (now_ < outstanding_.front().completion)
                now_ = outstanding_.front().completion;
            outstanding_.pop_front();
        }
    }

    u64 instructionsRetired() const { return instrCount_; }
    u64 demandMisses() const { return demandMisses_; }
    double missLatencySum() const { return missLatencySum_; }

  private:
    struct PendingMiss
    {
        u64 instrIndex;    ///< retirement index of the missing load
        double completion; ///< cycle at which its data arrives
    };

    void
    advance(u64 instructions)
    {
        instrCount_ += instructions;
        now_ += static_cast<double>(instructions) /
                static_cast<double>(config_.width);
    }

    void
    drainCompleted()
    {
        while (!outstanding_.empty() &&
               outstanding_.front().completion <= now_) {
            outstanding_.pop_front();
        }
    }

    CoreConfig config_;
    double now_ = 0.0;
    u64 instrCount_ = 0;
    std::deque<PendingMiss> outstanding_;
    u64 demandMisses_ = 0;
    double missLatencySum_ = 0.0;
};

} // namespace lva

#endif // LVA_CPU_OOO_CORE_HH
