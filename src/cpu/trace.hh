/**
 * @file
 * Memory-access trace capture for the full-system timing phase.
 *
 * The paper's phase-2 evaluation replays the same program under precise
 * execution and under LVA with varying approximation degree. We record
 * the access stream of a precise functional run (addresses, PCs,
 * precise values, annotation flags, interleaved instruction counts) and
 * replay it through the timing model. Table I shows instruction-count
 * variation under LVA is at most ~2.4%, so trace-driven replay is a
 * faithful substitute for execution-driven timing.
 */

#ifndef LVA_CPU_TRACE_HH
#define LVA_CPU_TRACE_HH

#include <vector>

#include "core/memory_backend.hh"
#include "util/types.hh"
#include "util/value.hh"

namespace lva {

/** One memory access in a per-thread trace. */
struct TraceEvent
{
    Addr addr = 0;
    Value value{};        ///< precise value (drives the approximator)
    LoadSiteId pc = 0;
    u32 instrBefore = 0;  ///< non-memory instructions since last event
    bool isLoad = true;
    bool approximable = false;
    bool dependsOnPrev = false; ///< address produced by previous load
};

/** The access stream of one logical thread / core. */
using ThreadTrace = std::vector<TraceEvent>;

/**
 * MemoryBackend that records per-thread traces while returning precise
 * values (i.e. the recorded run is the precise execution).
 */
class TraceRecorder : public MemoryBackend
{
  public:
    explicit TraceRecorder(u32 threads = 4);

    void store(ThreadId tid, LoadSiteId pc, Addr addr) override;
    void tickInstructions(ThreadId tid, u64 n) override;

    const std::vector<ThreadTrace> &traces() const { return traces_; }
    u32 threads() const { return static_cast<u32>(traces_.size()); }

    /** Total events recorded across all threads. */
    u64 totalEvents() const;

    /** Total instructions (memory + non-memory) across all threads. */
    u64 totalInstructions() const;

  protected:
    Value loadVirtual(ThreadId tid, LoadSiteId pc, Addr addr,
                      const Value &precise, bool approximable,
                      bool dependent) override;

  private:
    std::vector<ThreadTrace> traces_;
    std::vector<u32> pendingInstr_;
};

} // namespace lva

#endif // LVA_CPU_TRACE_HH
