/**
 * @file
 * Binary serialization of full-system traces, so workload recording
 * (expensive, functional) and timing replay (cheap, repeated) can be
 * decoupled across processes and machines.
 *
 * Format (little-endian, version 1):
 *   8-byte magic "LVATRC1\n"
 *   u32 thread count
 *   per thread: u64 event count, then events as packed records:
 *     u64 addr, u64 value bits, u32 pc, u32 instrBefore,
 *     u8 value kind, u8 flags (bit0 isLoad, bit1 approximable,
 *                              bit2 dependsOnPrev)
 */

#ifndef LVA_CPU_TRACE_IO_HH
#define LVA_CPU_TRACE_IO_HH

#include <string>
#include <vector>

#include "cpu/trace.hh"

namespace lva {

/** Write @p traces to @p path; fatal on I/O errors. */
void writeTraces(const std::vector<ThreadTrace> &traces,
                 const std::string &path);

/** Read traces from @p path; fatal on missing/corrupt files. */
std::vector<ThreadTrace> readTraces(const std::string &path);

} // namespace lva

#endif // LVA_CPU_TRACE_IO_HH
