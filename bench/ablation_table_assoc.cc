/**
 * @file
 * Ablation: approximator table associativity. Section VI-A observes
 * that similar floating-point contexts alias destructively in the
 * direct-mapped table and suggests growing it; associativity is the
 * other classic remedy. This bench holds total entries at 512 and
 * sweeps 1/2/4/8 ways.
 */

#include <cstdio>

#include "eval/sweep.hh"
#include "util/bench_timer.hh"
#include "util/results_dir.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace lva;

    BenchTimer timer("ablation_table_assoc");
    Evaluator eval;
    std::printf("Table-associativity ablation (seeds=%u, scale=%.2f)\n",
                eval.seeds(), eval.scale());

    const u32 ways[] = {1, 2, 4, 8};

    Table mpki({"benchmark", "1-way", "2-way", "4-way", "8-way"});
    Table error({"benchmark", "1-way", "2-way", "4-way", "8-way"});

    const SweepOptions opts =
        sweepOptionsFromCli("ablation_table_assoc", argc, argv);

    std::vector<SweepPoint> points;
    for (const auto &name : allWorkloadNames()) {
        for (u32 w : ways) {
            ApproxMemory::Config cfg = machineBaseLva(opts);
            // GHB 2 makes contexts value-dependent, where aliasing
            // actually occurs (PC-only contexts are too few to alias).
            cfg.editApprox([&](ApproximatorConfig &a) {
                a.ghbEntries = 2;
                a.tableAssoc = w;
            });
            points.push_back(
                {"ways-" + std::to_string(w), name, cfg});
        }
    }

    SweepRunner runner(eval);
    const SweepOutcome outcome = runner.runChecked(points, opts);
    const std::vector<EvalResult> &results = outcome.results;

    std::size_t next = 0;
    for (const auto &name : allWorkloadNames()) {
        std::vector<std::string> m_row = {name};
        std::vector<std::string> e_row = {name};
        for (std::size_t i = 0; i < std::size(ways); ++i) {
            const EvalResult &r = results[next++];
            m_row.push_back(fmtDouble(r.stats.valueOf("eval.normMpki"), 3));
            e_row.push_back(
                fmtPercent(r.stats.valueOf("eval.outputError"), 1));
        }
        mpki.addRow(m_row);
        error.addRow(e_row);
    }

    mpki.print("Associativity ablation (GHB 2): normalized MPKI");
    error.print("Associativity ablation (GHB 2): output error");
    mpki.writeCsv(resultsPath("ablation_table_assoc_mpki.csv"));
    error.writeCsv(resultsPath("ablation_table_assoc_error.csv"));
    std::printf("\nwrote results/ablation_table_assoc_{mpki,error}"
                ".csv\n");
    std::printf("wrote %s\n",
                exportSweepStats("ablation_table_assoc", points, outcome)
                    .c_str());
    return reportSweepFailures(outcome);
}
