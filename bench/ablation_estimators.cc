/**
 * @file
 * Ablation: the computation function f over the LHB. The paper "tried
 * different LHB functions such as strides and deltas and found average
 * to be most accurate" (section VI); this bench reproduces that design
 * decision by sweeping AVERAGE / LAST / STRIDE.
 */

#include <cstdio>

#include "eval/sweep.hh"
#include "util/bench_timer.hh"
#include "util/results_dir.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace lva;

    BenchTimer timer("ablation_estimators");
    Evaluator eval;
    std::printf("Estimator ablation (seeds=%u, scale=%.2f)\n",
                eval.seeds(), eval.scale());

    const Estimator fns[] = {Estimator::Average, Estimator::Last,
                             Estimator::Stride};
    const char *fn_names[] = {"AVERAGE", "LAST", "STRIDE"};

    Table mpki({"benchmark", "AVERAGE", "LAST", "STRIDE"});
    Table error({"benchmark", "AVERAGE", "LAST", "STRIDE"});

    std::vector<double> mpki_sum(3, 0.0), err_sum(3, 0.0);

    const SweepOptions opts =
        sweepOptionsFromCli("ablation_estimators", argc, argv);

    std::vector<SweepPoint> points;
    for (const auto &name : allWorkloadNames()) {
        for (u32 i = 0; i < 3; ++i) {
            ApproxMemory::Config cfg = machineBaseLva(opts);
            cfg.editApprox(
                [&](ApproximatorConfig &a) { a.estimator = fns[i]; });
            points.push_back(
                {fn_names[i], name, cfg});
        }
    }

    SweepRunner runner(eval);
    const SweepOutcome outcome = runner.runChecked(points, opts);
    const std::vector<EvalResult> &results = outcome.results;

    std::size_t next = 0;
    for (const auto &name : allWorkloadNames()) {
        std::vector<std::string> m_row = {name};
        std::vector<std::string> e_row = {name};
        for (u32 i = 0; i < 3; ++i) {
            const EvalResult &r = results[next++];
            m_row.push_back(fmtDouble(r.stats.valueOf("eval.normMpki"), 3));
            e_row.push_back(
                fmtPercent(r.stats.valueOf("eval.outputError"), 1));
            mpki_sum[i] += r.stats.valueOf("eval.normMpki");
            err_sum[i] += r.stats.valueOf("eval.outputError");
        }
        mpki.addRow(m_row);
        error.addRow(e_row);
    }
    const double n = static_cast<double>(allWorkloadNames().size());
    mpki.addRow({"average", fmtDouble(mpki_sum[0] / n, 3),
                 fmtDouble(mpki_sum[1] / n, 3),
                 fmtDouble(mpki_sum[2] / n, 3)});
    error.addRow({"average", fmtPercent(err_sum[0] / n, 1),
                  fmtPercent(err_sum[1] / n, 1),
                  fmtPercent(err_sum[2] / n, 1)});

    mpki.print("Estimator ablation: normalized MPKI");
    error.print("Estimator ablation: output error");
    mpki.writeCsv(resultsPath("ablation_estimators_mpki.csv"));
    error.writeCsv(resultsPath("ablation_estimators_error.csv"));
    std::printf("\nwrote %s\n",
                resultsPath("ablation_estimators_{mpki,error}.csv").c_str());
    std::printf("wrote %s\n",
                exportSweepStats("ablation_estimators", points, outcome)
                    .c_str());
    return reportSweepFailures(outcome);
}
