/**
 * @file
 * Hot-path loads/sec driver: the repo's end-to-end perf trajectory.
 *
 * Replays a fixed, precomputed synthetic access stream (8 load sites,
 * strided walks over working sets ~4x the pinned L1, seeded
 * random-walk values, a sprinkle of precise loads) through
 * ApproxMemory and reports steady-state loads per second for each
 * scenario.  The stream is generated outside the timed region so the
 * numbers measure the memory system — L1 lookup, context hash,
 * estimate, train — and not the driver.
 *
 * Output lands in results/hotpath_loads.json (schema
 * "lva-hotpath-v1"; see docs/performance.md) and scripts/run_all.sh
 * copies it to the repo-root BENCH_hotpath.json, so every PR extends
 * the trajectory.  Wall-clock numbers vary by host, but each
 * scenario's "value_digest" is a deterministic fold of every value
 * the memory system returned: scenarios that must be value-identical
 * (scalar vs batched) are asserted equal right here, and refactors
 * can diff digests against a baseline run.
 *
 * LVA_HOTPATH_LOADS scales the timed loop (default 4,000,000 loads
 * per scenario; CI uses a small value for a schema smoke test).
 * LVA_HOTPATH_REPS repeats each scenario (default 3) and reports the
 * fastest repetition — the standard noise-robust estimator on busy
 * hosts; every repetition must produce the identical value_digest.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/logging.hh"

#include "core/approx_memory.hh"
#include "util/bench_timer.hh"
#include "util/checkpoint.hh"
#include "util/env_knob.hh"
#include "util/random.hh"
#include "util/results_dir.hh"

namespace lva {
namespace {

/** One prebuilt access: everything ApproxMemory::load consumes. */
struct Access
{
    ThreadId tid;
    LoadSiteId pc;
    Addr addr;
    Value precise;
    bool approximable;
};

/** Length of the replayed stream (power of two for cheap wrap). */
constexpr u32 kStreamLen = 1u << 16;

constexpr u64 kDefaultLoads = 4'000'000;
constexpr u64 kWarmupLoads = 1u << 18;

u64
timedLoads()
{
    return envKnobU64("LVA_HOTPATH_LOADS", kDefaultLoads, 1,
                      u64(1) << 40);
}

u32
repetitions()
{
    return static_cast<u32>(envKnobU64("LVA_HOTPATH_REPS", 3, 1, 64));
}

/**
 * Build the fixed stream: per site, a strided walk with occasional
 * seeded jumps over a 128 KiB region (the pinned L1 is 32 KiB, so
 * steady state sees a realistic hit/miss mix), values random-walking
 * so AVERAGE estimates are close but never exact.
 */
std::vector<Access>
buildStream(u32 threads)
{
    constexpr u32 kSites = 8;
    constexpr Addr kRegionBytes = 128 * 1024;
    constexpr Addr kStride = 72; // > one line, not line-aligned

    Rng rng(0x0407'0a7bULL);
    std::vector<Addr> offset(kSites, 0);
    std::vector<double> walk(kSites, 100.0);

    std::vector<Access> stream;
    stream.reserve(kStreamLen);
    for (u32 i = 0; i < kStreamLen; ++i) {
        const u32 site = static_cast<u32>(rng.below(kSites));
        Access a;
        a.tid = static_cast<ThreadId>(site % threads);
        a.pc = 0x400000 + 4 * site;
        if (rng.below(32) == 0) // occasional pointer-chase jump
            offset[site] = rng.below(kRegionBytes);
        a.addr = 0x1000'0000 + static_cast<Addr>(site) * 0x40000 +
                 offset[site];
        offset[site] = (offset[site] + kStride) % kRegionBytes;

        walk[site] +=
            (static_cast<double>(rng.below(2001)) - 1000.0) / 997.0;
        a.precise = site % 2 == 0
                        ? Value::fromDouble(walk[site])
                        : Value::fromInt(static_cast<i64>(walk[site]));
        a.approximable = rng.below(16) != 0; // 1/16 precise loads
        stream.push_back(a);
    }
    return stream;
}

/** Cheap deterministic word fold (FNV-style, word at a time). */
inline u64
foldWord(u64 digest, u64 word)
{
    return (digest ^ word) * 0x100000001b3ULL;
}

struct ScenarioResult
{
    std::string name;
    u64 loads = 0;
    double seconds = 0.0;
    std::string valueDigest;

    double
    loadsPerSec() const
    {
        return seconds > 0.0 ? static_cast<double>(loads) / seconds
                             : 0.0;
    }
};

/**
 * Replay @p n loads through the scalar (per-call) entry point and
 * fold every returned value into the digest.
 */
u64
replayScalar(MemoryBackend &mem, const std::vector<Access> &stream,
             u64 n, u64 digest)
{
    const u32 mask = kStreamLen - 1;
    for (u64 i = 0; i < n; ++i) {
        const Access &a = stream[static_cast<u32>(i) & mask];
        const Value v = mem.load(a.tid, a.pc, a.addr, a.precise,
                                 a.approximable);
        digest = foldWord(digest, v.bits());
    }
    return digest;
}

/**
 * Replay the same @p n loads through the batched loadMany() entry in
 * runs of 16. loadMany processes requests in array order, so the
 * digest must match replayScalar's exactly (asserted in main).
 */
u64
replayBatched(MemoryBackend &mem, const std::vector<Access> &stream,
              u64 n, u64 digest)
{
    constexpr u32 kBatch = 16;
    const u32 mask = kStreamLen - 1;
    LoadRequest reqs[kBatch];
    Value got[kBatch];
    u64 i = 0;
    while (i < n) {
        const u32 m =
            static_cast<u32>(std::min<u64>(kBatch, n - i));
        for (u32 j = 0; j < m; ++j) {
            const Access &a = stream[static_cast<u32>(i + j) & mask];
            reqs[j].addr = a.addr;
            reqs[j].precise = a.precise;
            reqs[j].pc = a.pc;
            reqs[j].tid = a.tid;
            reqs[j].approximable = a.approximable;
            reqs[j].dependent = false;
        }
        mem.loadMany(reqs, got, m);
        for (u32 j = 0; j < m; ++j)
            digest = foldWord(digest, got[j].bits());
        i += m;
    }
    return digest;
}

ScenarioResult
runScenario(const std::string &name, const ApproxMemory::Config &cfg,
            const std::vector<Access> &stream, u64 n, u32 reps,
            bool batched = false)
{
    ScenarioResult out;
    out.name = name;
    out.loads = n;

    for (u32 r = 0; r < reps; ++r) {
        // Fresh memory system per repetition: identical initial
        // state, so every repetition must produce the same digest.
        ApproxMemory mem(cfg);
        MemoryBackend &backend = mem; // the workload-facing boundary
        auto replay = batched ? replayBatched : replayScalar;
        replay(backend, stream, kWarmupLoads, 0);

        BenchTimer timer("hotpath_loads/" + name);
        const u64 digest =
            replay(backend, stream, n, 0xcbf29ce484222325ULL);
        const double secs = timer.seconds();
        mem.finish();

        const std::string hex = hexU64(digest);
        if (r == 0)
            out.valueDigest = hex;
        else
            lva_assert(hex == out.valueDigest,
                       "%s: digest drift across repetitions (%s vs "
                       "%s)",
                       name.c_str(), hex.c_str(),
                       out.valueDigest.c_str());
        if (r == 0 || secs < out.seconds)
            out.seconds = secs;
    }
    return out;
}

std::string
renderJson(const std::vector<ScenarioResult> &scenarios, u64 n,
           u32 reps)
{
    std::string out;
    char buf[160];
    out += "{\n";
    out += "  \"schema\": \"lva-hotpath-v1\",\n";
    out += "  \"driver\": \"hotpath_loads\",\n";
    std::snprintf(buf, sizeof(buf),
                  "  \"warmup_loads\": %llu,\n  \"timed_loads\": "
                  "%llu,\n  \"reps\": %u,\n",
                  static_cast<unsigned long long>(kWarmupLoads),
                  static_cast<unsigned long long>(n),
                  static_cast<unsigned>(reps));
    out += buf;
    out += "  \"scenarios\": [\n";
    for (std::size_t i = 0; i < scenarios.size(); ++i) {
        const ScenarioResult &s = scenarios[i];
        std::snprintf(buf, sizeof(buf),
                      "    {\"name\": \"%s\", \"loads\": %llu, "
                      "\"seconds\": %.17g, \"loads_per_sec\": %.17g, "
                      "\"value_digest\": \"%s\"}%s\n",
                      s.name.c_str(),
                      static_cast<unsigned long long>(s.loads),
                      s.seconds, s.loadsPerSec(),
                      s.valueDigest.c_str(),
                      i + 1 < scenarios.size() ? "," : "");
        out += buf;
    }
    out += "  ]\n}\n";
    return out;
}

} // namespace
} // namespace lva

int
main()
{
    using namespace lva;

    BenchTimer timer("hotpath_loads");
    const u64 n = timedLoads();
    const u32 reps = repetitions();
    const std::vector<Access> stream = buildStream(4);

    ApproxMemory::Config precise;
    precise.mode = MemMode::Precise;

    ApproxMemory::Config lva; // full mechanism, every feature hot
    lva.mode = MemMode::Lva;
    lva.approx.ghbEntries = 2;
    lva.approx.valueDelay = 4;
    lva.approx.approxDegree = 2;

    std::vector<ScenarioResult> scenarios;
    scenarios.push_back(
        runScenario("precise_scalar", precise, stream, n, reps));
    scenarios.push_back(
        runScenario("lva_scalar", lva, stream, n, reps));
    scenarios.push_back(runScenario("lva_batched", lva, stream, n,
                                    reps, /*batched=*/true));
    lva_assert(scenarios[2].valueDigest == scenarios[1].valueDigest,
               "batched replay diverged from scalar (%s vs %s)",
               scenarios[2].valueDigest.c_str(),
               scenarios[1].valueDigest.c_str());

    std::printf("\n%-18s %14s %12s  %s\n", "scenario", "loads/sec",
                "seconds", "value_digest");
    for (const ScenarioResult &s : scenarios)
        std::printf("%-18s %14.0f %12.3f  %s\n", s.name.c_str(),
                    s.loadsPerSec(), s.seconds,
                    s.valueDigest.c_str());

    const std::string path = resultsPath("hotpath_loads.json");
    std::error_code ec;
    std::filesystem::create_directories(
        std::filesystem::path(path).parent_path(), ec);
    std::ofstream file(path, std::ios::binary | std::ios::trunc);
    file << renderJson(scenarios, n, reps);
    file.close();
    std::printf("\nwrote %s\n", path.c_str());
    return file.good() ? 0 : 1;
}
