/**
 * @file
 * Ablation: local history buffer depth (the baseline uses 4 entries).
 * Deeper LHBs smooth the AVERAGE estimate but respond more slowly to
 * value drift.
 */

#include <cstdio>

#include "eval/evaluator.hh"
#include "util/table.hh"

int
main()
{
    using namespace lva;

    Evaluator eval;
    std::printf("LHB-size ablation (seeds=%u, scale=%.2f)\n",
                eval.seeds(), eval.scale());

    const u32 sizes[] = {1, 2, 4, 8};

    Table mpki({"benchmark", "LHB-1", "LHB-2", "LHB-4", "LHB-8"});
    Table error({"benchmark", "LHB-1", "LHB-2", "LHB-4", "LHB-8"});

    for (const auto &name : allWorkloadNames()) {
        std::vector<std::string> m_row = {name};
        std::vector<std::string> e_row = {name};
        for (u32 entries : sizes) {
            ApproxMemory::Config cfg = Evaluator::baselineLva();
            cfg.approx.lhbEntries = entries;
            const EvalResult r = eval.evaluate(name, cfg);
            m_row.push_back(fmtDouble(r.normMpki, 3));
            e_row.push_back(fmtPercent(r.outputError, 1));
        }
        mpki.addRow(m_row);
        error.addRow(e_row);
    }

    mpki.print("LHB-size ablation: normalized MPKI");
    error.print("LHB-size ablation: output error");
    mpki.writeCsv("results/ablation_lhb_size_mpki.csv");
    error.writeCsv("results/ablation_lhb_size_error.csv");
    std::printf("\nwrote results/ablation_lhb_size_{mpki,error}.csv\n");
    return 0;
}
