/**
 * @file
 * Ablation: local history buffer depth (the baseline uses 4 entries).
 * Deeper LHBs smooth the AVERAGE estimate but respond more slowly to
 * value drift.
 */

#include <cstdio>

#include "eval/sweep.hh"
#include "util/bench_timer.hh"
#include "util/results_dir.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace lva;

    BenchTimer timer("ablation_lhb_size");
    Evaluator eval;
    std::printf("LHB-size ablation (seeds=%u, scale=%.2f)\n",
                eval.seeds(), eval.scale());

    const u32 sizes[] = {1, 2, 4, 8};

    Table mpki({"benchmark", "LHB-1", "LHB-2", "LHB-4", "LHB-8"});
    Table error({"benchmark", "LHB-1", "LHB-2", "LHB-4", "LHB-8"});

    const SweepOptions opts =
        sweepOptionsFromCli("ablation_lhb_size", argc, argv);

    std::vector<SweepPoint> points;
    for (const auto &name : allWorkloadNames()) {
        for (u32 entries : sizes) {
            ApproxMemory::Config cfg = machineBaseLva(opts);
            cfg.editApprox(
                [&](ApproximatorConfig &a) { a.lhbEntries = entries; });
            points.push_back(
                {"lhb-" + std::to_string(entries), name, cfg});
        }
    }

    SweepRunner runner(eval);
    const SweepOutcome outcome = runner.runChecked(points, opts);
    const std::vector<EvalResult> &results = outcome.results;

    std::size_t next = 0;
    for (const auto &name : allWorkloadNames()) {
        std::vector<std::string> m_row = {name};
        std::vector<std::string> e_row = {name};
        for (std::size_t i = 0; i < std::size(sizes); ++i) {
            const EvalResult &r = results[next++];
            m_row.push_back(fmtDouble(r.stats.valueOf("eval.normMpki"), 3));
            e_row.push_back(
                fmtPercent(r.stats.valueOf("eval.outputError"), 1));
        }
        mpki.addRow(m_row);
        error.addRow(e_row);
    }

    mpki.print("LHB-size ablation: normalized MPKI");
    error.print("LHB-size ablation: output error");
    mpki.writeCsv(resultsPath("ablation_lhb_size_mpki.csv"));
    error.writeCsv(resultsPath("ablation_lhb_size_error.csv"));
    std::printf("\nwrote %s\n",
                resultsPath("ablation_lhb_size_{mpki,error}.csv").c_str());
    std::printf("wrote %s\n",
                exportSweepStats("ablation_lhb_size", points, outcome)
                    .c_str());
    return reportSweepFailures(outcome);
}
