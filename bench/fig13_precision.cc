/**
 * @file
 * Regenerates paper Figure 13: fluidanimate's effective MPKI
 * (normalized to precise execution) as floating-point mantissa bits are
 * dropped from the GHB hash — 0, 5, 11, 17 and 23 bits — with a GHB of
 * size 2 and the confidence gate disabled (paper section VII-B).
 */

#include <cstdio>

#include "eval/sweep.hh"
#include "util/bench_timer.hh"
#include "util/results_dir.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace lva;

    BenchTimer timer("fig13_precision");
    Evaluator eval;
    std::printf("Figure 13 reproduction (seeds=%u, scale=%.2f)\n",
                eval.seeds(), eval.scale());

    const u32 drops[] = {0, 5, 11, 17, 23};

    Table table({"precision loss (bits)", "normalized MPKI",
                 "output error", "coverage"});

    const SweepOptions opts =
        sweepOptionsFromCli("fig13_precision", argc, argv);

    std::vector<SweepPoint> points;
    for (u32 drop : drops) {
        ApproxMemory::Config cfg = machineBaseLva(opts);
        cfg.editApprox([&](ApproximatorConfig &a) {
            a.ghbEntries = 2;
            a.confidenceDisabled = true;
            a.mantissaDropBits = drop;
        });
        points.push_back(
            {"drop-" + std::to_string(drop), "fluidanimate", cfg});
    }

    SweepRunner runner(eval);
    const SweepOutcome outcome = runner.runChecked(points, opts);
    const std::vector<EvalResult> &results = outcome.results;

    for (std::size_t i = 0; i < std::size(drops); ++i) {
        const EvalResult &r = results[i];
        table.addRow({std::to_string(drops[i]),
                      fmtDouble(r.stats.valueOf("eval.normMpki"), 3),
                      fmtPercent(r.stats.valueOf("eval.outputError"), 1),
                      fmtPercent(r.stats.valueOf("eval.coverage"), 1)});
    }

    table.print("Figure 13: fluidanimate MPKI vs FP precision loss "
                "(GHB 2, confidence disabled)");
    table.writeCsv(resultsPath("fig13_precision.csv"));
    std::printf("\nwrote %s\n",
                resultsPath("fig13_precision.csv").c_str());
    std::printf("wrote %s\n",
                exportSweepStats("fig13_precision", points, outcome)
                    .c_str());
    return reportSweepFailures(outcome);
}
