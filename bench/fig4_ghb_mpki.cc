/**
 * @file
 * Regenerates paper Figure 4: effective MPKI (normalized to precise
 * execution) of LVA versus an idealized LVP, for global history buffer
 * sizes 0, 1, 2 and 4.
 */

#include <cstdio>

#include "eval/sweep.hh"
#include "util/bench_timer.hh"
#include "util/results_dir.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace lva;

    BenchTimer timer("fig4_ghb_mpki");
    Evaluator eval;
    std::printf("Figure 4 reproduction (seeds=%u, scale=%.2f)\n",
                eval.seeds(), eval.scale());

    const u32 ghb_sizes[] = {0, 1, 2, 4};

    Table table({"benchmark", "LVP-GHB-0", "LVP-GHB-1", "LVP-GHB-2",
                 "LVP-GHB-4", "LVA-GHB-0", "LVA-GHB-1", "LVA-GHB-2",
                 "LVA-GHB-4"});

    std::vector<double> lvp_sum(4, 0.0), lva_sum(4, 0.0);

    // 8 sweep points per benchmark: LVP then LVA across GHB sizes.
    const SweepOptions opts =
        sweepOptionsFromCli("fig4_ghb_mpki", argc, argv);

    std::vector<SweepPoint> points;
    for (const auto &name : allWorkloadNames()) {
        for (u32 i = 0; i < 4; ++i) {
            ApproxMemory::Config cfg = machineBaseLva(opts);
            cfg.mode = MemMode::Lvp;
            cfg.editApprox([&](ApproximatorConfig &a) {
                a.ghbEntries = ghb_sizes[i];
            });
            points.push_back(
                {"lvp-ghb-" + std::to_string(ghb_sizes[i]), name,
                 cfg});
        }
        for (u32 i = 0; i < 4; ++i) {
            ApproxMemory::Config cfg = machineBaseLva(opts);
            cfg.editApprox([&](ApproximatorConfig &a) {
                a.ghbEntries = ghb_sizes[i];
            });
            points.push_back(
                {"lva-ghb-" + std::to_string(ghb_sizes[i]), name,
                 cfg});
        }
    }

    SweepRunner runner(eval);
    const SweepOutcome outcome = runner.runChecked(points, opts);
    const std::vector<EvalResult> &results = outcome.results;

    std::size_t next = 0;
    for (const auto &name : allWorkloadNames()) {
        std::vector<std::string> row = {name};
        for (u32 i = 0; i < 4; ++i) {
            const EvalResult &r = results[next++];
            row.push_back(fmtDouble(r.stats.valueOf("eval.normMpki"), 3));
            lvp_sum[i] += r.stats.valueOf("eval.normMpki");
        }
        for (u32 i = 0; i < 4; ++i) {
            const EvalResult &r = results[next++];
            row.push_back(fmtDouble(r.stats.valueOf("eval.normMpki"), 3));
            lva_sum[i] += r.stats.valueOf("eval.normMpki");
        }
        table.addRow(row);
    }

    const double n = static_cast<double>(allWorkloadNames().size());
    std::vector<std::string> avg = {"average"};
    for (u32 i = 0; i < 4; ++i)
        avg.push_back(fmtDouble(lvp_sum[i] / n, 3));
    for (u32 i = 0; i < 4; ++i)
        avg.push_back(fmtDouble(lva_sum[i] / n, 3));
    table.addRow(avg);

    table.print("Figure 4: normalized MPKI, LVA vs idealized LVP "
                "(lower is better)");
    table.writeCsv(resultsPath("fig4_ghb_mpki.csv"));
    std::printf("\nwrote %s\n",
                resultsPath("fig4_ghb_mpki.csv").c_str());
    std::printf("wrote %s\n",
                exportSweepStats("fig4_ghb_mpki", points, outcome)
                    .c_str());
    return reportSweepFailures(outcome);
}
