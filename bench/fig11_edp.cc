/**
 * @file
 * Regenerates paper Figure 11: the L1-miss energy-delay product of LVA
 * (normalized to precise execution) at approximation degrees 0, 2, 4,
 * 8 and 16. Paper: average reductions of 41.9%, 53.8% and 63.8% at
 * degrees 0, 4 and 16.
 */

#include <cstdio>

#include "eval/fullsystem_eval.hh"
#include "eval/sweep.hh"
#include "util/bench_timer.hh"
#include "util/results_dir.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace lva;

    BenchTimer timer("fig11_edp");
    const std::vector<u32> degrees = {0, 2, 4, 8, 16};
    std::printf("Figure 11 reproduction (scale=%.2f)\n",
                fsScaleFromEnv());

    Table table({"benchmark", "approx-0", "approx-2", "approx-4",
                 "approx-8", "approx-16"});

    std::vector<double> edp_sum(degrees.size(), 0.0);

    const auto &names = allWorkloadNames();
    const SweepOptions opts =
        sweepOptionsFromCli("fig11_edp", argc, argv);
    SweepRunner runner;
    const auto outcome = runner.mapChecked(
        names.size(),
        [&](u64 i) {
            return runFullSystemSweep(names[i], degrees, 1, 0.0,
                                      opts.machine.get());
        },
        opts, [&names](u64 i) { return names[i]; });

    std::vector<FsSweep> sweeps;
    for (std::size_t w = 0; w < names.size(); ++w) {
        if (!outcome.results[w]) // listed in the failures section
            continue;
        const FsSweep &sweep = *outcome.results[w];
        sweeps.push_back(sweep);
        std::vector<std::string> row = {names[w]};
        for (std::size_t i = 0; i < degrees.size(); ++i) {
            row.push_back(fmtDouble(sweep.normMissEdp(i), 3));
            edp_sum[i] += sweep.normMissEdp(i);
        }
        table.addRow(row);
    }

    // Averages cover the workloads that completed.
    const double n = static_cast<double>(sweeps.size());
    std::vector<std::string> avg = {"average"};
    for (std::size_t i = 0; i < degrees.size(); ++i)
        avg.push_back(fmtDouble(edp_sum[i] / n, 3));
    table.addRow(avg);

    table.print("Figure 11: normalized L1-miss EDP by approximation "
                "degree (paper avg: 0.581 @0, 0.462 @4, 0.362 @16)");
    table.writeCsv(resultsPath("fig11_edp.csv"));
    std::printf("\nwrote %s\n",
                resultsPath("fig11_edp.csv").c_str());
    std::printf("wrote %s\n",
                writeStatsJson("fig11_edp", fsSweepSnapshots(sweeps),
                               outcome.failures)
                    .c_str());
    return reportSweepFailures(outcome.failures, names.size());
}
