/**
 * @file
 * Full-system diagnostic: per-workload breakdown of the timing replay
 * (cycles, IPC, misses, latency, traffic, energy) for the precise
 * baseline and LVA at degrees 0 and 16. Useful when validating the
 * timing model or exploring configurations.
 *
 * Usage: fsdiag [--stats] [workload ...]   (default: all)
 *
 * With --stats, gem5-style statistics files are written to
 * results/stats/<workload>_<config>.txt for every replay.
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "eval/fullsystem_eval.hh"
#include "eval/stat_report.hh"
#include "eval/sweep.hh"
#include "util/bench_timer.hh"
#include "util/results_dir.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

namespace {

void
addRow(lva::Table &t, const char *label,
       const lva::FullSystemResult &r)
{
    using lva::fmtDouble;
    t.addRow({label, fmtDouble(r.cycles / 1e6, 2), fmtDouble(r.ipc, 2),
              std::to_string(r.l1Misses),
              std::to_string(r.demandMisses),
              std::to_string(r.approxMisses),
              std::to_string(r.fetchesSkipped),
              fmtDouble(r.avgL1MissLatency, 1),
              std::to_string(r.dramAccesses),
              std::to_string(r.flitHops),
              fmtDouble(r.nocQueueWait / 1e6, 2),
              fmtDouble(r.memQueueWait / 1e6, 2),
              fmtDouble(r.bankQueueWait / 1e6, 2),
              fmtDouble(r.energy.total() / 1e6, 3)});
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace lva;

    bool stats = false;
    std::vector<std::string> names;
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--stats"))
            stats = true;
        else
            names.push_back(argv[i]);
    }
    if (names.empty())
        names = allWorkloadNames();

    BenchTimer timer("fsdiag");
    // fsdiag has its own CLI (--stats, workload names), so the
    // robustness knobs — and the machine, via LVA_MACHINE — arrive
    // through the environment only.
    SweepOptions opts;
    opts.driver = "fsdiag";
    opts = resolveSweepOptions(opts);
    SweepRunner runner;
    const auto outcome = runner.mapChecked(
        names.size(),
        [&](u64 i) {
            return runFullSystemSweep(names[i], {0, 16}, 1, 0.0,
                                      opts.machine.get());
        },
        opts, [&names](u64 i) { return names[i]; });

    std::vector<FsSweep> sweeps;
    for (std::size_t w = 0; w < names.size(); ++w) {
        if (!outcome.results[w]) // listed in the failures section
            continue;
        const FsSweep &sweep = *outcome.results[w];
        sweeps.push_back(sweep);
        const std::string &name = names[w];
        Table t({"config", "Mcycles", "IPC", "L1miss", "demand",
                 "approx", "skipped", "missLat", "dram", "flitHops",
                 "nocWaitM", "memWaitM", "bankWaitM", "mJ*1e-6"});
        addRow(t, "precise", sweep.baseline);
        addRow(t, "lva-0", sweep.lva[0]);
        addRow(t, "lva-16", sweep.lva[1]);
        t.print("fsdiag: " + name);

        if (stats) {
            reportFullSystem(sweep.baseline, name + ".precise")
                .writeFile(
                    resultsPath("stats/" + name + "_precise.txt"));
            reportFullSystem(sweep.lva[0], name + ".lva0")
                .writeFile(resultsPath("stats/" + name + "_lva0.txt"));
            reportFullSystem(sweep.lva[1], name + ".lva16")
                .writeFile(
                    resultsPath("stats/" + name + "_lva16.txt"));
            std::printf(
                "wrote %s\n",
                resultsPath("stats/" + name + "_{precise,lva0,lva16}.txt")
                    .c_str());
        }
    }
    std::printf("wrote %s\n",
                writeStatsJson("fsdiag", fsSweepSnapshots(sweeps),
                               outcome.failures)
                    .c_str());
    return reportSweepFailures(outcome.failures, names.size());
}
