/**
 * @file
 * Ablation: approximator table size. Paper section VII-A argues the
 * hardware budget can shrink well below 512 entries because so few
 * static loads access approximate data (Figure 12); this bench sweeps
 * the table from 32 to 2048 entries.
 */

#include <cstdio>

#include "eval/sweep.hh"
#include "util/bench_timer.hh"
#include "util/results_dir.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace lva;

    BenchTimer timer("ablation_table_size");
    Evaluator eval;
    std::printf("Table-size ablation (seeds=%u, scale=%.2f)\n",
                eval.seeds(), eval.scale());

    const u32 sizes[] = {32, 128, 512, 2048};

    Table mpki({"benchmark", "32", "128", "512", "2048"});
    Table error({"benchmark", "32", "128", "512", "2048"});

    const SweepOptions opts =
        sweepOptionsFromCli("ablation_table_size", argc, argv);

    std::vector<SweepPoint> points;
    for (const auto &name : allWorkloadNames()) {
        for (u32 entries : sizes) {
            ApproxMemory::Config cfg = machineBaseLva(opts);
            cfg.editApprox([&](ApproximatorConfig &a) {
                a.tableEntries = entries;
            });
            points.push_back(
                {"entries-" + std::to_string(entries), name, cfg});
        }
    }

    SweepRunner runner(eval);
    const SweepOutcome outcome = runner.runChecked(points, opts);
    const std::vector<EvalResult> &results = outcome.results;

    std::size_t next = 0;
    for (const auto &name : allWorkloadNames()) {
        std::vector<std::string> m_row = {name};
        std::vector<std::string> e_row = {name};
        for (std::size_t i = 0; i < std::size(sizes); ++i) {
            const EvalResult &r = results[next++];
            m_row.push_back(fmtDouble(r.stats.valueOf("eval.normMpki"), 3));
            e_row.push_back(
                fmtPercent(r.stats.valueOf("eval.outputError"), 1));
        }
        mpki.addRow(m_row);
        error.addRow(e_row);
    }

    mpki.print("Table-size ablation: normalized MPKI by entries");
    error.print("Table-size ablation: output error by entries");
    mpki.writeCsv(resultsPath("ablation_table_size_mpki.csv"));
    error.writeCsv(resultsPath("ablation_table_size_error.csv"));
    std::printf("\nwrote %s\n",
                resultsPath("ablation_table_size_{mpki,error}.csv").c_str());
    std::printf("wrote %s\n",
                exportSweepStats("ablation_table_size", points, outcome)
                    .c_str());
    return reportSweepFailures(outcome);
}
