/**
 * @file
 * Regenerates paper Figure 7: effective MPKI (a) and output error (b)
 * for value delays of 4, 8, 16 and 32 load instructions.
 */

#include <cstdio>

#include "eval/sweep.hh"
#include "util/bench_timer.hh"
#include "util/results_dir.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace lva;

    BenchTimer timer("fig7_value_delay");
    Evaluator eval;
    std::printf("Figure 7 reproduction (seeds=%u, scale=%.2f)\n",
                eval.seeds(), eval.scale());

    const u32 delays[] = {4, 8, 16, 32};

    Table mpki({"benchmark", "delay-4", "delay-8", "delay-16",
                "delay-32"});
    Table error({"benchmark", "delay-4", "delay-8", "delay-16",
                 "delay-32"});

    const SweepOptions opts =
        sweepOptionsFromCli("fig7_value_delay", argc, argv);

    std::vector<SweepPoint> points;
    for (const auto &name : allWorkloadNames()) {
        for (u32 d : delays) {
            ApproxMemory::Config cfg = machineBaseLva(opts);
            cfg.editApprox(
                [&](ApproximatorConfig &a) { a.valueDelay = d; });
            points.push_back(
                {"delay-" + std::to_string(d), name, cfg});
        }
    }

    SweepRunner runner(eval);
    const SweepOutcome outcome = runner.runChecked(points, opts);
    const std::vector<EvalResult> &results = outcome.results;

    std::size_t next = 0;
    for (const auto &name : allWorkloadNames()) {
        std::vector<std::string> mpki_row = {name};
        std::vector<std::string> err_row = {name};
        for (std::size_t i = 0; i < std::size(delays); ++i) {
            const EvalResult &r = results[next++];
            mpki_row.push_back(fmtDouble(r.stats.valueOf("eval.normMpki"), 3));
            err_row.push_back(
                fmtPercent(r.stats.valueOf("eval.outputError"), 1));
        }
        mpki.addRow(mpki_row);
        error.addRow(err_row);
    }

    mpki.print("Figure 7a: normalized MPKI by value delay");
    error.print("Figure 7b: output error by value delay");
    mpki.writeCsv(resultsPath("fig7a_delay_mpki.csv"));
    error.writeCsv(resultsPath("fig7b_delay_error.csv"));
    std::printf("\nwrote %s, %s\n",
                resultsPath("fig7a_delay_mpki.csv").c_str(),
                resultsPath("fig7b_delay_error.csv").c_str());
    std::printf("wrote %s\n",
                exportSweepStats("fig7_value_delay", points, outcome)
                    .c_str());
    return reportSweepFailures(outcome);
}
