/**
 * @file
 * Regenerates paper Table I: precise L1 MPKI per benchmark and the
 * variation in dynamic instruction count when employing load value
 * approximation (baseline configuration).
 */

#include <cstdio>

#include "eval/evaluator.hh"
#include "util/table.hh"

int
main()
{
    using namespace lva;

    Evaluator eval;
    std::printf("Table I reproduction (seeds=%u, scale=%.2f)\n",
                eval.seeds(), eval.scale());

    Table table({"benchmark", "L1 MPKI (precise)", "instr variation",
                 "paper MPKI", "paper variation"});

    const char *paper_mpki[] = {"0.93", "4.93", "12.50", "3.28",
                                "1.23", "4.92e-05", "0.59"};
    const char *paper_var[] = {"0.99%", "0.05%", "1.25%", "0.60%",
                               "0.17%", "0.00%", "2.37%"};

    std::size_t row = 0;
    for (const auto &name : allWorkloadNames()) {
        const EvalResult precise = eval.evaluatePrecise(name);
        const EvalResult lva =
            eval.evaluate(name, Evaluator::baselineLva());

        table.addRow({name,
                      precise.mpki < 0.01
                          ? fmtDouble(precise.mpki, 6)
                          : fmtDouble(precise.mpki, 2),
                      fmtPercent(lva.instrVariation, 2),
                      paper_mpki[row], paper_var[row]});
        ++row;
    }

    table.print("Table I: precise L1 MPKI and instruction variation");
    table.writeCsv("results/table1_mpki.csv");
    std::printf("\nwrote results/table1_mpki.csv\n");
    return 0;
}
