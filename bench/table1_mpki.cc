/**
 * @file
 * Regenerates paper Table I: precise L1 MPKI per benchmark and the
 * variation in dynamic instruction count when employing load value
 * approximation (baseline configuration).
 */

#include <cstdio>

#include "eval/sweep.hh"
#include "util/bench_timer.hh"
#include "util/table.hh"

int
main()
{
    using namespace lva;

    BenchTimer timer("table1_mpki");
    Evaluator eval;
    std::printf("Table I reproduction (seeds=%u, scale=%.2f)\n",
                eval.seeds(), eval.scale());

    Table table({"benchmark", "L1 MPKI (precise)", "instr variation",
                 "paper MPKI", "paper variation"});

    const char *paper_mpki[] = {"0.93", "4.93", "12.50", "3.28",
                                "1.23", "4.92e-05", "0.59"};
    const char *paper_var[] = {"0.99%", "0.05%", "1.25%", "0.60%",
                               "0.17%", "0.00%", "2.37%"};

    struct Point
    {
        EvalResult precise;
        EvalResult lva;
    };
    const auto &names = allWorkloadNames();
    SweepRunner runner(eval);
    const std::vector<Point> results =
        runner.map(names.size(), [&](u64 i) {
            return Point{eval.evaluatePrecise(names[i]),
                         eval.evaluate(names[i],
                                       Evaluator::baselineLva())};
        });

    for (std::size_t row = 0; row < names.size(); ++row) {
        const Point &p = results[row];
        table.addRow({names[row],
                      p.precise.mpki < 0.01
                          ? fmtDouble(p.precise.mpki, 6)
                          : fmtDouble(p.precise.mpki, 2),
                      fmtPercent(p.lva.instrVariation, 2),
                      paper_mpki[row], paper_var[row]});
    }

    table.print("Table I: precise L1 MPKI and instruction variation");
    table.writeCsv("results/table1_mpki.csv");
    std::printf("\nwrote results/table1_mpki.csv\n");
    return 0;
}
