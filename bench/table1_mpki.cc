/**
 * @file
 * Regenerates paper Table I: precise L1 MPKI per benchmark and the
 * variation in dynamic instruction count when employing load value
 * approximation (baseline configuration).
 */

#include <cstdio>

#include "eval/stat_report.hh"
#include "eval/sweep.hh"
#include "util/bench_timer.hh"
#include "util/results_dir.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace lva;

    BenchTimer timer("table1_mpki");
    Evaluator eval;
    std::printf("Table I reproduction (seeds=%u, scale=%.2f)\n",
                eval.seeds(), eval.scale());

    Table table({"benchmark", "L1 MPKI (precise)", "instr variation",
                 "paper MPKI", "paper variation"});

    const char *paper_mpki[] = {"0.93", "4.93", "12.50", "3.28",
                                "1.23", "4.92e-05", "0.59"};
    const char *paper_var[] = {"0.99%", "0.05%", "1.25%", "0.60%",
                               "0.17%", "0.00%", "2.37%"};

    struct Point
    {
        EvalResult precise;
        EvalResult lva;
    };
    const auto &names = allWorkloadNames();
    const SweepOptions opts =
        sweepOptionsFromCli("table1_mpki", argc, argv);
    const ApproxMemory::Config base = machineBaseLva(opts);
    const ApproxMemory::Config precise =
        Evaluator::preciseBaseFor(base);
    SweepRunner runner(eval);
    const auto outcome = runner.mapChecked(
        names.size(),
        [&](u64 i) {
            return Point{eval.evaluatePrecise(names[i], precise),
                         eval.evaluate(names[i], base)};
        },
        opts, [&names](u64 i) { return names[i]; });

    std::vector<NamedSnapshot> snaps;
    for (std::size_t row = 0; row < names.size(); ++row) {
        if (!outcome.results[row]) {
            // Failed benchmark: an honest nan row; details live in
            // the export's failures section.
            table.addRow({names[row], "nan", "nan", paper_mpki[row],
                          paper_var[row]});
            continue;
        }
        const Point &p = *outcome.results[row];
        const double mpki = p.precise.stats.valueOf("eval.mpki");
        table.addRow({names[row],
                      mpki < 0.01 ? fmtDouble(mpki, 6)
                                  : fmtDouble(mpki, 2),
                      fmtPercent(p.lva.stats.valueOf(
                                     "eval.instrVariation"),
                                 2),
                      paper_mpki[row], paper_var[row]});
        snaps.push_back(
            {names[row] + "/precise", names[row], p.precise.stats});
        snaps.push_back({names[row] + "/lva", names[row], p.lva.stats});
    }

    table.print("Table I: precise L1 MPKI and instruction variation");
    table.writeCsv(resultsPath("table1_mpki.csv"));
    std::printf("\nwrote %s\n",
                resultsPath("table1_mpki.csv").c_str());
    std::printf("wrote %s\n",
                writeStatsJson("table1_mpki", snaps,
                               outcome.failures).c_str());
    return reportSweepFailures(outcome.failures, names.size());
}
