/**
 * @file
 * Ablation: coherence protocol. The paper's system uses MSI (Table
 * II); this bench re-runs the full-system comparison under MESI to
 * show that LVA's benefit is protocol-insensitive (the E state saves
 * upgrade traffic equally in the baseline and the LVA system).
 */

#include <cstdio>

#include "cpu/trace.hh"
#include "eval/fullsystem_eval.hh"
#include "eval/sweep.hh"
#include "sim/machine_config.hh"
#include "util/bench_timer.hh"
#include "util/results_dir.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace lva;

    BenchTimer timer("ablation_coherence");
    std::printf("Coherence-protocol ablation (scale=%.2f)\n",
                fsScaleFromEnv());

    // Note: MESI is not uniformly cheaper — the E state saves GetM
    // upgrades on private read-write data but forces owner forwards
    // on read-shared data (the directory cannot know whether an E
    // copy was silently dirtied), so traffic can go either way.
    Table table({"benchmark", "LVA speedup (MSI)",
                 "LVA speedup (MESI)",
                 "baseline traffic change (MESI vs MSI)"});

    // A map task returns the formatted table row plus the labelled
    // registry snapshots, so the JSON export sees every replay.
    struct WorkRes
    {
        std::vector<std::string> row;
        std::vector<NamedSnapshot> snaps;
    };

    const auto &names = allWorkloadNames();
    const SweepOptions opts =
        sweepOptionsFromCli("ablation_coherence", argc, argv);
    const MachineConfig &machine = sweepMachine(opts);
    SweepRunner runner;
    const auto outcome = runner.mapChecked(
        names.size(),
        [&](u64 i) {
            const std::string &name = names[i];
            WorkloadParams params;
            params.seed = 1;
            params.scale = fsScaleFromEnv();
            params.threads = machine.cores;
            auto w = makeWorkload(name, params);
            w->generate();
            TraceRecorder rec(params.threads);
            w->run(rec);

            auto run = [&](CoherenceProtocol proto, bool lva_on) {
                FullSystemConfig cfg =
                    machine.fullSystem(lva_on, /*degree=*/4);
                cfg.protocol = proto;
                FullSystemSim sim(cfg);
                return sim.run(rec.traces());
            };

            const FullSystemResult msi_base =
                run(CoherenceProtocol::Msi, false);
            const FullSystemResult msi_lva =
                run(CoherenceProtocol::Msi, true);
            const FullSystemResult mesi_base =
                run(CoherenceProtocol::Mesi, false);
            const FullSystemResult mesi_lva =
                run(CoherenceProtocol::Mesi, true);

            auto cycles = [](const FullSystemResult &r) {
                return r.stats.valueOf("system.cycles");
            };
            WorkRes res;
            res.row = {
                name,
                fmtPercent(cycles(msi_base) / cycles(msi_lva) - 1.0, 1),
                fmtPercent(cycles(mesi_base) / cycles(mesi_lva) - 1.0, 1),
                fmtPercent(FsSweep::snapFlitHops(mesi_base.stats) /
                                   FsSweep::snapFlitHops(msi_base.stats) -
                               1.0,
                           1)};
            res.snaps = {{name + "/msi-base", name, msi_base.stats},
                         {name + "/msi-lva", name, msi_lva.stats},
                         {name + "/mesi-base", name, mesi_base.stats},
                         {name + "/mesi-lva", name, mesi_lva.stats}};
            return res;
        },
        opts, [&names](u64 i) { return names[i]; });

    std::vector<NamedSnapshot> snaps;
    for (const auto &r : outcome.results) {
        if (!r) // failed workload: listed in the failures section
            continue;
        table.addRow(r->row);
        snaps.insert(snaps.end(), r->snaps.begin(), r->snaps.end());
    }

    table.print("LVA (degree 4) speedup under MSI vs MESI");
    table.writeCsv(resultsPath("ablation_coherence.csv"));
    std::printf("\nwrote %s\n",
                resultsPath("ablation_coherence.csv").c_str());
    std::printf("wrote %s\n",
                writeStatsJson("ablation_coherence", snaps,
                               outcome.failures).c_str());
    return reportSweepFailures(outcome.failures, names.size());
}
