/**
 * @file
 * Regenerates paper Figure 9: LVA output error for approximation
 * degrees 0, 2, 4, 8 and 16.
 */

#include <cstdio>

#include "eval/sweep.hh"
#include "util/bench_timer.hh"
#include "util/results_dir.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace lva;

    BenchTimer timer("fig9_degree_error");
    Evaluator eval;
    std::printf("Figure 9 reproduction (seeds=%u, scale=%.2f)\n",
                eval.seeds(), eval.scale());

    const u32 degrees[] = {0, 2, 4, 8, 16};

    Table table({"benchmark", "approx-0", "approx-2", "approx-4",
                 "approx-8", "approx-16"});

    const SweepOptions opts =
        sweepOptionsFromCli("fig9_degree_error", argc, argv);

    std::vector<SweepPoint> points;
    for (const auto &name : allWorkloadNames()) {
        for (u32 d : degrees) {
            ApproxMemory::Config cfg = machineBaseLva(opts);
            cfg.editApprox(
                [&](ApproximatorConfig &a) { a.approxDegree = d; });
            points.push_back(
                {"degree-" + std::to_string(d), name, cfg});
        }
    }

    SweepRunner runner(eval);
    const SweepOutcome outcome = runner.runChecked(points, opts);
    const std::vector<EvalResult> &results = outcome.results;

    std::size_t next = 0;
    for (const auto &name : allWorkloadNames()) {
        std::vector<std::string> row = {name};
        for (std::size_t i = 0; i < std::size(degrees); ++i) {
            const EvalResult &r = results[next++];
            row.push_back(
                fmtPercent(r.stats.valueOf("eval.outputError"), 1));
        }
        table.addRow(row);
    }

    table.print("Figure 9: LVA output error by approximation degree");
    table.writeCsv(resultsPath("fig9_degree_error.csv"));
    std::printf("\nwrote %s\n",
                resultsPath("fig9_degree_error.csv").c_str());
    std::printf("wrote %s\n",
                exportSweepStats("fig9_degree_error", points, outcome)
                    .c_str());
    return reportSweepFailures(outcome);
}
