/**
 * @file
 * Regenerates paper Figure 5: application output error of LVA for
 * global history buffer sizes 0, 1, 2 and 4 (baseline configuration).
 */

#include <cstdio>

#include "eval/sweep.hh"
#include "util/bench_timer.hh"
#include "util/results_dir.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace lva;

    BenchTimer timer("fig5_ghb_error");
    Evaluator eval;
    std::printf("Figure 5 reproduction (seeds=%u, scale=%.2f)\n",
                eval.seeds(), eval.scale());

    const u32 ghb_sizes[] = {0, 1, 2, 4};

    Table table({"benchmark", "GHB-0", "GHB-1", "GHB-2", "GHB-4",
                 "coverage@GHB-0"});

    const SweepOptions opts =
        sweepOptionsFromCli("fig5_ghb_error", argc, argv);

    std::vector<SweepPoint> points;
    for (const auto &name : allWorkloadNames()) {
        for (u32 i = 0; i < 4; ++i) {
            ApproxMemory::Config cfg = machineBaseLva(opts);
            cfg.editApprox([&](ApproximatorConfig &a) {
                a.ghbEntries = ghb_sizes[i];
            });
            points.push_back(
                {"ghb-" + std::to_string(ghb_sizes[i]), name, cfg});
        }
    }

    SweepRunner runner(eval);
    const SweepOutcome outcome = runner.runChecked(points, opts);
    const std::vector<EvalResult> &results = outcome.results;

    std::size_t next = 0;
    for (const auto &name : allWorkloadNames()) {
        std::vector<std::string> row = {name};
        double coverage0 = 0.0;
        for (u32 i = 0; i < 4; ++i) {
            const EvalResult &r = results[next++];
            row.push_back(fmtPercent(r.stats.valueOf("eval.outputError"), 1));
            if (i == 0)
                coverage0 = r.stats.valueOf("eval.coverage");
        }
        row.push_back(fmtPercent(coverage0, 1));
        table.addRow(row);
    }

    table.print("Figure 5: LVA output error by GHB size");
    table.writeCsv(resultsPath("fig5_ghb_error.csv"));
    std::printf("\nwrote %s\n",
                resultsPath("fig5_ghb_error.csv").c_str());
    std::printf("wrote %s\n",
                exportSweepStats("fig5_ghb_error", points, outcome)
                    .c_str());
    return reportSweepFailures(outcome);
}
