/**
 * @file
 * Ablation: proportional confidence updates — the optimization the
 * paper explicitly defers to future work (section III-B). A failed
 * validation decrements confidence in proportion to how far outside
 * the window the estimate fell, which is only expressible because
 * approximation error is a distance rather than a binary mispredict.
 * Confidence is applied to both data types so the gate matters.
 */

#include <cstdio>

#include "eval/sweep.hh"
#include "util/bench_timer.hh"
#include "util/table.hh"

int
main()
{
    using namespace lva;

    BenchTimer timer("ablation_confidence_step");
    Evaluator eval;
    std::printf("Proportional-confidence ablation (seeds=%u, "
                "scale=%.2f)\n",
                eval.seeds(), eval.scale());

    Table table({"benchmark", "MPKI fixed", "MPKI proportional",
                 "error fixed", "error proportional"});

    std::vector<SweepPoint> points;
    for (const auto &name : allWorkloadNames()) {
        ApproxMemory::Config fixed = Evaluator::baselineLva();
        fixed.approx.confidenceForInts = true;
        fixed.approx.confidenceWindow = 0.10;

        ApproxMemory::Config prop = fixed;
        prop.approx.proportionalConfidence = true;

        points.push_back({"fixed", name, fixed});
        points.push_back({"proportional", name, prop});
    }

    SweepRunner runner(eval);
    const std::vector<EvalResult> results = runner.run(points);

    std::size_t next = 0;
    for (const auto &name : allWorkloadNames()) {
        const EvalResult &rf = results[next++];
        const EvalResult &rp = results[next++];
        table.addRow({name, fmtDouble(rf.normMpki, 3),
                      fmtDouble(rp.normMpki, 3),
                      fmtPercent(rf.outputError, 1),
                      fmtPercent(rp.outputError, 1)});
    }

    table.print("Future-work ablation: fixed vs proportional "
                "confidence updates (+/-10% window, both data types)");
    table.writeCsv("results/ablation_confidence_step.csv");
    std::printf("\nwrote results/ablation_confidence_step.csv\n");
    return 0;
}
