/**
 * @file
 * Ablation: proportional confidence updates — the optimization the
 * paper explicitly defers to future work (section III-B). A failed
 * validation decrements confidence in proportion to how far outside
 * the window the estimate fell, which is only expressible because
 * approximation error is a distance rather than a binary mispredict.
 * Confidence is applied to both data types so the gate matters.
 */

#include <cstdio>

#include "eval/sweep.hh"
#include "util/bench_timer.hh"
#include "util/results_dir.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace lva;

    BenchTimer timer("ablation_confidence_step");
    Evaluator eval;
    std::printf("Proportional-confidence ablation (seeds=%u, "
                "scale=%.2f)\n",
                eval.seeds(), eval.scale());

    Table table({"benchmark", "MPKI fixed", "MPKI proportional",
                 "error fixed", "error proportional"});

    const SweepOptions opts =
        sweepOptionsFromCli("ablation_confidence_step", argc, argv);

    std::vector<SweepPoint> points;
    for (const auto &name : allWorkloadNames()) {
        ApproxMemory::Config fixed = machineBaseLva(opts);
        fixed.editApprox([](ApproximatorConfig &a) {
            a.confidenceForInts = true;
            a.confidenceWindow = 0.10;
        });

        ApproxMemory::Config prop = fixed;
        prop.editApprox([](ApproximatorConfig &a) {
            a.proportionalConfidence = true;
        });

        points.push_back({"fixed", name, fixed});
        points.push_back({"proportional", name, prop});
    }

    SweepRunner runner(eval);
    const SweepOutcome outcome = runner.runChecked(points, opts);
    const std::vector<EvalResult> &results = outcome.results;

    std::size_t next = 0;
    for (const auto &name : allWorkloadNames()) {
        const EvalResult &rf = results[next++];
        const EvalResult &rp = results[next++];
        table.addRow({name, fmtDouble(rf.stats.valueOf("eval.normMpki"), 3),
                      fmtDouble(rp.stats.valueOf("eval.normMpki"), 3),
                      fmtPercent(rf.stats.valueOf("eval.outputError"), 1),
                      fmtPercent(rp.stats.valueOf("eval.outputError"), 1)});
    }

    table.print("Future-work ablation: fixed vs proportional "
                "confidence updates (+/-10% window, both data types)");
    table.writeCsv(resultsPath("ablation_confidence_step.csv"));
    std::printf("\nwrote %s\n",
                resultsPath("ablation_confidence_step.csv").c_str());
    std::printf("wrote %s\n",
                exportSweepStats("ablation_confidence_step", points, outcome)
                    .c_str());
    return reportSweepFailures(outcome);
}
