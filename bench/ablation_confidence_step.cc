/**
 * @file
 * Ablation: proportional confidence updates — the optimization the
 * paper explicitly defers to future work (section III-B). A failed
 * validation decrements confidence in proportion to how far outside
 * the window the estimate fell, which is only expressible because
 * approximation error is a distance rather than a binary mispredict.
 * Confidence is applied to both data types so the gate matters.
 */

#include <cstdio>

#include "eval/evaluator.hh"
#include "util/table.hh"

int
main()
{
    using namespace lva;

    Evaluator eval;
    std::printf("Proportional-confidence ablation (seeds=%u, "
                "scale=%.2f)\n",
                eval.seeds(), eval.scale());

    Table table({"benchmark", "MPKI fixed", "MPKI proportional",
                 "error fixed", "error proportional"});

    for (const auto &name : allWorkloadNames()) {
        ApproxMemory::Config fixed = Evaluator::baselineLva();
        fixed.approx.confidenceForInts = true;
        fixed.approx.confidenceWindow = 0.10;

        ApproxMemory::Config prop = fixed;
        prop.approx.proportionalConfidence = true;

        const EvalResult rf = eval.evaluate(name, fixed);
        const EvalResult rp = eval.evaluate(name, prop);
        table.addRow({name, fmtDouble(rf.normMpki, 3),
                      fmtDouble(rp.normMpki, 3),
                      fmtPercent(rf.outputError, 1),
                      fmtPercent(rp.outputError, 1)});
    }

    table.print("Future-work ablation: fixed vs proportional "
                "confidence updates (+/-10% window, both data types)");
    table.writeCsv("results/ablation_confidence_step.csv");
    std::printf("\nwrote results/ablation_confidence_step.csv\n");
    return 0;
}
