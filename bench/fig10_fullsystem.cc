/**
 * @file
 * Regenerates paper Figure 10: full-system speedup (a) and
 * memory-hierarchy dynamic energy savings (b) of LVA at approximation
 * degrees 0, 2, 4, 8 and 16, on the Table II 4-core CMP.
 *
 * Paper headlines: up to 28.6% speedup (8.5% average at degree 0);
 * up to 44.1% energy savings (12.6% average at degree 16); average
 * L1 miss latency reduced by 41.0%; interconnect traffic reduced by
 * 37.2% at degree 16.
 */

#include <cstdio>

#include "eval/fullsystem_eval.hh"
#include "eval/sweep.hh"
#include "util/bench_timer.hh"
#include "util/results_dir.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace lva;

    BenchTimer timer("fig10_fullsystem");
    const std::vector<u32> degrees = {0, 2, 4, 8, 16};
    std::printf("Figure 10 reproduction (scale=%.2f)\n",
                fsScaleFromEnv());

    Table speedup({"benchmark", "approx-0", "approx-2", "approx-4",
                   "approx-8", "approx-16"});
    Table energy({"benchmark", "approx-0", "approx-2", "approx-4",
                  "approx-8", "approx-16"});

    std::vector<double> sp_sum(degrees.size(), 0.0);
    std::vector<double> en_sum(degrees.size(), 0.0);
    double lat_red_sum = 0.0;
    double traffic_red_sum = 0.0;

    const auto &names = allWorkloadNames();
    const SweepOptions opts =
        sweepOptionsFromCli("fig10_fullsystem", argc, argv);
    SweepRunner runner;
    const auto outcome = runner.mapChecked(
        names.size(),
        [&](u64 i) {
            return runFullSystemSweep(names[i], degrees, 1, 0.0,
                                      opts.machine.get());
        },
        opts, [&names](u64 i) { return names[i]; });

    std::vector<FsSweep> sweeps;
    for (std::size_t w = 0; w < names.size(); ++w) {
        if (!outcome.results[w]) // listed in the failures section
            continue;
        const FsSweep &sweep = *outcome.results[w];
        sweeps.push_back(sweep);
        const std::string &name = names[w];
        std::vector<std::string> sp_row = {name};
        std::vector<std::string> en_row = {name};
        for (std::size_t i = 0; i < degrees.size(); ++i) {
            sp_row.push_back(fmtPercent(sweep.speedup(i), 1));
            en_row.push_back(fmtPercent(sweep.energySavings(i), 1));
            sp_sum[i] += sweep.speedup(i);
            en_sum[i] += sweep.energySavings(i);
        }
        speedup.addRow(sp_row);
        energy.addRow(en_row);
        lat_red_sum += sweep.missLatencyReduction(0);
        traffic_red_sum += sweep.trafficReduction(degrees.size() - 1);
    }

    // Averages cover the workloads that completed.
    const double n = static_cast<double>(sweeps.size());
    std::vector<std::string> sp_avg = {"average"};
    std::vector<std::string> en_avg = {"average"};
    for (std::size_t i = 0; i < degrees.size(); ++i) {
        sp_avg.push_back(fmtPercent(sp_sum[i] / n, 1));
        en_avg.push_back(fmtPercent(en_sum[i] / n, 1));
    }
    speedup.addRow(sp_avg);
    energy.addRow(en_avg);

    speedup.print("Figure 10a: full-system speedup by approximation "
                  "degree (paper: 8.5% avg @0, max 28.6%)");
    energy.print("Figure 10b: energy savings by approximation degree "
                 "(paper: 12.6% avg @16, max 44.1%)");
    speedup.writeCsv(resultsPath("fig10a_speedup.csv"));
    energy.writeCsv(resultsPath("fig10b_energy.csv"));

    std::printf("\navg L1 miss latency reduction @degree 0: %.1f%% "
                "(paper: 41.0%%)\n", lat_red_sum / n * 100.0);
    std::printf("avg interconnect traffic reduction @degree 16: %.1f%% "
                "(paper: 37.2%%)\n", traffic_red_sum / n * 100.0);
    std::printf("wrote %s, %s\n",
                resultsPath("fig10a_speedup.csv").c_str(),
                resultsPath("fig10b_energy.csv").c_str());
    std::printf("wrote %s\n",
                writeStatsJson("fig10_fullsystem",
                               fsSweepSnapshots(sweeps),
                               outcome.failures)
                    .c_str());
    return reportSweepFailures(outcome.failures, names.size());
}
