/**
 * @file
 * Regenerates paper Figure 12: the number of static (distinct) load
 * instructions that access approximate data per benchmark.
 *
 * The mini-kernels have fewer static loads than the full PARSEC
 * binaries (paper: up to ~300 for x264), but preserve the ordering —
 * x264's unrolled search kernels have the most annotated sites, the
 * financial kernels the fewest — and the conclusion: the approximator
 * table needs very few entries to cover all static approximate loads.
 */

#include <cstdio>

#include "eval/evaluator.hh"
#include "util/table.hh"

int
main()
{
    using namespace lva;

    Table table({"benchmark", "static approx loads",
                 "all static loads"});

    WorkloadParams params;
    params.scale = 0.05; // site counts are static: tiny inputs suffice

    for (const auto &name : allWorkloadNames()) {
        auto w = makeWorkload(name, params);
        u32 total = static_cast<u32>(w->loadSites().size());
        table.addRow({name, std::to_string(w->approxLoadSites()),
                      std::to_string(total)});
    }

    table.print("Figure 12: static (distinct) PCs of approximate loads");
    table.writeCsv("results/fig12_static_loads.csv");
    std::printf("\nwrote results/fig12_static_loads.csv\n");
    return 0;
}
