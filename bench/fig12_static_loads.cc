/**
 * @file
 * Regenerates paper Figure 12: the number of static (distinct) load
 * instructions that access approximate data per benchmark.
 *
 * The mini-kernels have fewer static loads than the full PARSEC
 * binaries (paper: up to ~300 for x264), but preserve the ordering —
 * x264's unrolled search kernels have the most annotated sites, the
 * financial kernels the fewest — and the conclusion: the approximator
 * table needs very few entries to cover all static approximate loads.
 */

#include <cstdio>
#include <utility>

#include "eval/stat_report.hh"
#include "eval/sweep.hh"
#include "util/bench_timer.hh"
#include "util/results_dir.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace lva;

    BenchTimer timer("fig12_static_loads");
    Table table({"benchmark", "static approx loads",
                 "all static loads"});

    WorkloadParams params;
    params.scale = 0.05; // site counts are static: tiny inputs suffice

    const auto &names = allWorkloadNames();
    const SweepOptions opts =
        sweepOptionsFromCli("fig12_static_loads", argc, argv);
    // A machine only changes the thread count here: the census is
    // static, but sites are per-thread-partition in some kernels.
    params.threads = machineBaseLva(opts).threads;
    SweepRunner runner;
    const auto outcome = runner.mapChecked(
        names.size(),
        [&](u64 i) {
            auto w = makeWorkload(names[i], params);
            return std::make_pair(
                w->approxLoadSites(),
                static_cast<u32>(w->loadSites().size()));
        },
        opts, [&names](u64 i) { return names[i]; });

    // No simulation runs here, so the export carries one snapshot of
    // catalogued "workload.*" gauges per benchmark.
    const auto &defs = workloadStaticDefs();
    std::vector<NamedSnapshot> snaps;
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (!outcome.results[i]) {
            table.addRow({names[i], "nan", "nan"});
            continue;
        }
        const auto &counts = *outcome.results[i];
        table.addRow({names[i], std::to_string(counts.first),
                      std::to_string(counts.second)});
        StatSnapshot snap;
        snap.setGauge(defs[0].path,
                      static_cast<double>(counts.first),
                      defs[0].desc, defs[0].unit);
        snap.setGauge(defs[1].path,
                      static_cast<double>(counts.second),
                      defs[1].desc, defs[1].unit);
        snaps.push_back({names[i], names[i], snap});
    }

    table.print("Figure 12: static (distinct) PCs of approximate loads");
    table.writeCsv(resultsPath("fig12_static_loads.csv"));
    std::printf("\nwrote %s\n",
                resultsPath("fig12_static_loads.csv").c_str());
    std::printf("wrote %s\n",
                writeStatsJson("fig12_static_loads", snaps,
                               outcome.failures).c_str());
    return reportSweepFailures(outcome.failures, names.size());
}
