/**
 * @file
 * google-benchmark microbenchmarks of the cache tag model and the
 * mesh NoC timing path — the structures every simulated access
 * touches, so their host throughput bounds experiment runtime.
 */

#include <benchmark/benchmark.h>

#include "mem/cache.hh"
#include "noc/mesh.hh"
#include "util/random.hh"

namespace {

using namespace lva;

void
BM_CacheHit(benchmark::State &state)
{
    Cache cache(CacheConfig::pinL1());
    cache.insert(0x1000);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(0x1000));
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_CacheHit);

void
BM_CacheRandomAccess(benchmark::State &state)
{
    Cache cache({static_cast<u64>(state.range(0)), 8, 64});
    Rng rng(1);
    for (auto _ : state) {
        const Addr addr = rng.below(1 << 16) * 64;
        if (!cache.access(addr))
            cache.insert(addr);
    }
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_CacheRandomAccess)->Arg(16 * 1024)->Arg(64 * 1024);

void
BM_CacheInsertEvict(benchmark::State &state)
{
    Cache cache({1024, 2, 64}); // tiny: every insert evicts
    Addr addr = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.insert(addr));
        addr += 64;
    }
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_CacheInsertEvict);

void
BM_MeshDeliver(benchmark::State &state)
{
    Mesh mesh(MeshConfig{});
    Rng rng(1);
    double t = 0.0;
    for (auto _ : state) {
        const u32 src = static_cast<u32>(rng.below(4));
        const u32 dst = static_cast<u32>(rng.below(4));
        benchmark::DoNotOptimize(
            mesh.deliver(src, dst, MessageBytes::data, t));
        t += 4.0;
    }
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_MeshDeliver);

} // namespace

BENCHMARK_MAIN();
