/**
 * @file
 * Regenerates paper Figure 8: effective MPKI (a) and L1 blocks fetched
 * (b), normalized to precise execution, comparing GHB prefetching at
 * degrees 2/4/8/16 against load value approximation at the same
 * approximation degrees. Prefetching applies to all loads; LVA only to
 * annotated ones.
 */

#include <cstdio>

#include "eval/sweep.hh"
#include "util/bench_timer.hh"
#include "util/results_dir.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace lva;

    BenchTimer timer("fig8_degree_fetches");
    Evaluator eval;
    std::printf("Figure 8 reproduction (seeds=%u, scale=%.2f)\n",
                eval.seeds(), eval.scale());

    const u32 degrees[] = {2, 4, 8, 16};

    Table mpki({"benchmark", "prefetch-2", "prefetch-4", "prefetch-8",
                "prefetch-16", "approx-2", "approx-4", "approx-8",
                "approx-16"});
    Table fetches({"benchmark", "prefetch-2", "prefetch-4", "prefetch-8",
                   "prefetch-16", "approx-2", "approx-4", "approx-8",
                   "approx-16"});

    std::vector<double> pf_fetch_sum(4, 0.0), ap_fetch_sum(4, 0.0);

    const SweepOptions opts =
        sweepOptionsFromCli("fig8_degree_fetches", argc, argv);

    std::vector<SweepPoint> points;
    for (const auto &name : allWorkloadNames()) {
        for (u32 i = 0; i < 4; ++i) {
            ApproxMemory::Config cfg = machineBaseLva(opts);
            cfg.mode = MemMode::Prefetch;
            cfg.prefetch.degree = degrees[i];
            points.push_back(
                {"prefetch-" + std::to_string(degrees[i]), name,
                 cfg});
        }
        for (u32 i = 0; i < 4; ++i) {
            ApproxMemory::Config cfg = machineBaseLva(opts);
            cfg.editApprox([&](ApproximatorConfig &a) {
                a.approxDegree = degrees[i];
            });
            points.push_back(
                {"approx-" + std::to_string(degrees[i]), name,
                 cfg});
        }
    }

    SweepRunner runner(eval);
    const SweepOutcome outcome = runner.runChecked(points, opts);
    const std::vector<EvalResult> &results = outcome.results;

    std::size_t next = 0;
    for (const auto &name : allWorkloadNames()) {
        std::vector<std::string> mpki_row = {name};
        std::vector<std::string> fetch_row = {name};
        for (u32 i = 0; i < 4; ++i) {
            const EvalResult &r = results[next++];
            mpki_row.push_back(fmtDouble(r.stats.valueOf("eval.normMpki"), 3));
            fetch_row.push_back(
                fmtDouble(r.stats.valueOf("eval.normFetches"), 3));
            pf_fetch_sum[i] += r.stats.valueOf("eval.normFetches");
        }
        for (u32 i = 0; i < 4; ++i) {
            const EvalResult &r = results[next++];
            mpki_row.push_back(fmtDouble(r.stats.valueOf("eval.normMpki"), 3));
            fetch_row.push_back(
                fmtDouble(r.stats.valueOf("eval.normFetches"), 3));
            ap_fetch_sum[i] += r.stats.valueOf("eval.normFetches");
        }
        mpki.addRow(mpki_row);
        fetches.addRow(fetch_row);
    }

    const double n = static_cast<double>(allWorkloadNames().size());
    std::vector<std::string> avg_row = {"average"};
    for (u32 i = 0; i < 4; ++i)
        avg_row.push_back(fmtDouble(pf_fetch_sum[i] / n, 3));
    for (u32 i = 0; i < 4; ++i)
        avg_row.push_back(fmtDouble(ap_fetch_sum[i] / n, 3));
    fetches.addRow(avg_row);

    mpki.print("Figure 8a: normalized MPKI, prefetching vs LVA degree");
    fetches.print("Figure 8b: normalized fetches, prefetching vs LVA "
                  "degree");
    mpki.writeCsv(resultsPath("fig8a_degree_mpki.csv"));
    fetches.writeCsv(resultsPath("fig8b_degree_fetches.csv"));

    std::printf("\npaper headline: at degree 16, LVA cuts fetched "
                "blocks by >39%% while prefetching adds 73%%\n");
    std::printf("measured: LVA %.1f%% cut, prefetching %.1f%% added\n",
                (1.0 - ap_fetch_sum[3] / n) * 100.0,
                (pf_fetch_sum[3] / n - 1.0) * 100.0);
    std::printf("wrote %s, %s\n",
                resultsPath("fig8a_degree_mpki.csv").c_str(),
                resultsPath("fig8b_degree_fetches.csv").c_str());
    std::printf("wrote %s\n",
                exportSweepStats("fig8_degree_fetches", points, outcome)
                    .c_str());
    return reportSweepFailures(outcome);
}
