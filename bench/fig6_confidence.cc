/**
 * @file
 * Regenerates paper Figure 6: effective MPKI (a) and output error (b)
 * for relaxed confidence windows of 0% (ideal LVP), 5%, 10%, 20% and
 * infinite. In this sweep the confidence gate applies to both
 * floating-point AND integer data (paper section VI-B).
 */

#include <cmath>
#include <cstdio>
#include <limits>

#include "eval/sweep.hh"
#include "util/bench_timer.hh"
#include "util/results_dir.hh"
#include "util/table.hh"

int
main(int argc, char **argv)
{
    using namespace lva;

    BenchTimer timer("fig6_confidence");
    Evaluator eval;
    std::printf("Figure 6 reproduction (seeds=%u, scale=%.2f)\n",
                eval.seeds(), eval.scale());

    struct Window
    {
        const char *label;
        double value;
        bool lvp;
    };
    const Window windows[] = {
        {"0% (ideal LVP)", 0.0, true},
        {"5%", 0.05, false},
        {"10%", 0.10, false},
        {"20%", 0.20, false},
        {"infinite", std::numeric_limits<double>::infinity(), false},
    };

    Table mpki({"benchmark", "0% (ideal LVP)", "5%", "10%", "20%",
                "infinite"});
    Table error({"benchmark", "5%", "10%", "20%", "infinite"});

    const SweepOptions opts =
        sweepOptionsFromCli("fig6_confidence", argc, argv);

    std::vector<SweepPoint> points;
    for (const auto &name : allWorkloadNames()) {
        for (const Window &w : windows) {
            ApproxMemory::Config cfg = machineBaseLva(opts);
            if (w.lvp) {
                cfg.mode = MemMode::Lvp;
            } else {
                cfg.editApprox([&](ApproximatorConfig &a) {
                    a.confidenceWindow = w.value;
                    a.confidenceForInts = true;
                });
            }
            points.push_back({w.label, name, cfg});
        }
    }

    SweepRunner runner(eval);
    const SweepOutcome outcome = runner.runChecked(points, opts);
    const std::vector<EvalResult> &results = outcome.results;

    std::size_t next = 0;
    for (const auto &name : allWorkloadNames()) {
        std::vector<std::string> mpki_row = {name};
        std::vector<std::string> err_row = {name};
        for (const Window &w : windows) {
            const EvalResult &r = results[next++];
            mpki_row.push_back(fmtDouble(r.stats.valueOf("eval.normMpki"), 3));
            if (!w.lvp)
                err_row.push_back(
                    fmtPercent(r.stats.valueOf("eval.outputError"), 1));
        }
        mpki.addRow(mpki_row);
        error.addRow(err_row);
    }

    mpki.print("Figure 6a: normalized MPKI by confidence window");
    error.print("Figure 6b: output error by confidence window");
    mpki.writeCsv(resultsPath("fig6a_confidence_mpki.csv"));
    error.writeCsv(resultsPath("fig6b_confidence_error.csv"));
    std::printf("\nwrote %s, %s\n",
                resultsPath("fig6a_confidence_mpki.csv").c_str(),
                resultsPath("fig6b_confidence_error.csv").c_str());
    std::printf("wrote %s\n",
                exportSweepStats("fig6_confidence", points, outcome)
                    .c_str());
    return reportSweepFailures(outcome);
}
