/**
 * @file
 * Ablation: heterogeneous NoC (paper section VI-C, citing Mishra et
 * al.). Training fetches ride a second mesh plane with narrow links
 * and deep low-voltage routers whose flit-hops cost ~40% of the fast
 * plane's energy. Because LVA tolerates value delay, performance is
 * essentially unchanged while NoC energy drops and fast-plane traffic
 * shrinks.
 */

#include <cstdio>

#include "cpu/trace.hh"
#include "eval/fullsystem_eval.hh"
#include "eval/sweep.hh"
#include "sim/machine_config.hh"
#include "util/bench_timer.hh"
#include "util/results_dir.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace lva;

    BenchTimer timer("ablation_hetero_noc");
    std::printf("Heterogeneous-NoC ablation (scale=%.2f)\n",
                fsScaleFromEnv());

    Table table({"benchmark", "speedup homo", "speedup hetero",
                 "NoC energy homo", "NoC energy hetero",
                 "energy savings homo", "energy savings hetero"});

    // A map task returns the formatted table row plus the labelled
    // registry snapshots, so the JSON export sees every replay.
    struct WorkRes
    {
        std::vector<std::string> row;
        std::vector<NamedSnapshot> snaps;
    };

    const auto &names = allWorkloadNames();
    const SweepOptions opts =
        sweepOptionsFromCli("ablation_hetero_noc", argc, argv);
    const MachineConfig &machine = sweepMachine(opts);
    SweepRunner runner;
    const auto outcome = runner.mapChecked(
        names.size(),
        [&](u64 i) {
            const std::string &name = names[i];
            WorkloadParams params;
            params.seed = 1;
            params.scale = fsScaleFromEnv();
            params.threads = machine.cores;
            auto w = makeWorkload(name, params);
            w->generate();
            TraceRecorder rec(params.threads);
            w->run(rec);

            FullSystemSim base_sim(machine.fullSystem(false));
            const FullSystemResult base = base_sim.run(rec.traces());

            // The homo/hetero legs are the ablation axis, so they
            // override whatever the machine file says.
            FullSystemConfig homo_cfg = machine.fullSystem(true, 4);
            homo_cfg.heteroNoc = false;
            FullSystemSim homo_sim(homo_cfg);
            const FullSystemResult homo = homo_sim.run(rec.traces());

            FullSystemConfig hetero_cfg = machine.fullSystem(true, 4);
            hetero_cfg.heteroNoc = true;
            FullSystemSim hetero_sim(hetero_cfg);
            const FullSystemResult hetero = hetero_sim.run(rec.traces());

            auto cycles = [](const FullSystemResult &r) {
                return r.stats.valueOf("system.cycles");
            };
            auto total = [](const FullSystemResult &r) {
                return r.stats.valueOf("energy.total");
            };
            WorkRes res;
            res.row = {
                name,
                fmtPercent(cycles(base) / cycles(homo) - 1.0, 1),
                fmtPercent(cycles(base) / cycles(hetero) - 1.0, 1),
                fmtDouble(homo.stats.valueOf("energy.noc"), 1),
                fmtDouble(hetero.stats.valueOf("energy.noc"), 1),
                fmtPercent(1.0 - total(homo) / total(base), 1),
                fmtPercent(1.0 - total(hetero) / total(base), 1)};
            res.snaps = {{name + "/baseline", name, base.stats},
                         {name + "/homo", name, homo.stats},
                         {name + "/hetero", name, hetero.stats}};
            return res;
        },
        opts, [&names](u64 i) { return names[i]; });

    std::vector<NamedSnapshot> snaps;
    for (const auto &r : outcome.results) {
        if (!r) // failed workload: listed in the failures section
            continue;
        table.addRow(r->row);
        snaps.insert(snaps.end(), r->snaps.begin(), r->snaps.end());
    }

    table.print("LVA (degree 4): homogeneous vs heterogeneous NoC "
                "for training fetches");
    table.writeCsv(resultsPath("ablation_hetero_noc.csv"));
    std::printf("\nwrote %s\n",
                resultsPath("ablation_hetero_noc.csv").c_str());
    std::printf("wrote %s\n",
                writeStatsJson("ablation_hetero_noc", snaps,
                               outcome.failures).c_str());
    return reportSweepFailures(outcome.failures, names.size());
}
