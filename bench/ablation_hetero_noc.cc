/**
 * @file
 * Ablation: heterogeneous NoC (paper section VI-C, citing Mishra et
 * al.). Training fetches ride a second mesh plane with narrow links
 * and deep low-voltage routers whose flit-hops cost ~40% of the fast
 * plane's energy. Because LVA tolerates value delay, performance is
 * essentially unchanged while NoC energy drops and fast-plane traffic
 * shrinks.
 */

#include <cstdio>

#include "cpu/trace.hh"
#include "eval/fullsystem_eval.hh"
#include "eval/sweep.hh"
#include "util/bench_timer.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace lva;

    BenchTimer timer("ablation_hetero_noc");
    std::printf("Heterogeneous-NoC ablation (scale=%.2f)\n",
                fsScaleFromEnv());

    Table table({"benchmark", "speedup homo", "speedup hetero",
                 "NoC energy homo", "NoC energy hetero",
                 "energy savings homo", "energy savings hetero"});

    const auto &names = allWorkloadNames();
    SweepRunner runner;
    const auto rows = runner.map(names.size(), [&](u64 i) {
        const std::string &name = names[i];
        WorkloadParams params;
        params.seed = 1;
        params.scale = fsScaleFromEnv();
        auto w = makeWorkload(name, params);
        w->generate();
        TraceRecorder rec(params.threads);
        w->run(rec);

        FullSystemSim base_sim(FullSystemConfig::baseline());
        const FullSystemResult base = base_sim.run(rec.traces());

        FullSystemConfig homo_cfg = FullSystemConfig::lva(4);
        FullSystemSim homo_sim(homo_cfg);
        const FullSystemResult homo = homo_sim.run(rec.traces());

        FullSystemConfig hetero_cfg = FullSystemConfig::lva(4);
        hetero_cfg.heteroNoc = true;
        FullSystemSim hetero_sim(hetero_cfg);
        const FullSystemResult hetero = hetero_sim.run(rec.traces());

        return std::vector<std::string>(
            {name, fmtPercent(base.cycles / homo.cycles - 1.0, 1),
             fmtPercent(base.cycles / hetero.cycles - 1.0, 1),
             fmtDouble(homo.energy.noc, 1),
             fmtDouble(hetero.energy.noc, 1),
             fmtPercent(1.0 - homo.energy.total() /
                                  base.energy.total(), 1),
             fmtPercent(1.0 - hetero.energy.total() /
                                  base.energy.total(), 1)});
    });

    for (const auto &row : rows)
        table.addRow(row);

    table.print("LVA (degree 4): homogeneous vs heterogeneous NoC "
                "for training fetches");
    table.writeCsv("results/ablation_hetero_noc.csv");
    std::printf("\nwrote results/ablation_hetero_noc.csv\n");
    return 0;
}
