/**
 * @file
 * Ablation: deprioritized training fetches (paper section VI-C).
 * Because LVA's fetches only train the approximator, they can travel
 * over a slow, low-energy NoC/memory path; this bench adds 0/100/300
 * extra cycles to every background fetch and shows that speedup is
 * essentially unaffected — the paper's value-delay-resilience argument
 * applied to the full system.
 */

#include <cstdio>

#include "cpu/trace.hh"
#include "eval/fullsystem_eval.hh"
#include "eval/sweep.hh"
#include "sim/machine_config.hh"
#include "util/bench_timer.hh"
#include "util/results_dir.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

int
main(int argc, char **argv)
{
    using namespace lva;

    BenchTimer timer("ablation_slow_fetch");
    const u32 extras[] = {0, 100, 300};
    std::printf("Slow-training-fetch ablation (scale=%.2f)\n",
                fsScaleFromEnv());

    Table table({"benchmark", "+0 cycles", "+100 cycles",
                 "+300 cycles"});

    // A map task returns the formatted table row plus the labelled
    // registry snapshots, so the JSON export sees every replay.
    struct WorkRes
    {
        std::vector<std::string> row;
        std::vector<NamedSnapshot> snaps;
    };

    const auto &names = allWorkloadNames();
    const SweepOptions opts =
        sweepOptionsFromCli("ablation_slow_fetch", argc, argv);
    const MachineConfig &machine = sweepMachine(opts);
    SweepRunner runner;
    const auto outcome = runner.mapChecked(
        names.size(),
        [&](u64 i) {
            const std::string &name = names[i];
            WorkloadParams params;
            params.seed = 1;
            params.scale = fsScaleFromEnv();
            params.threads = machine.cores;
            auto w = makeWorkload(name, params);
            w->generate();
            TraceRecorder rec(params.threads);
            w->run(rec);

            FullSystemSim base_sim(machine.fullSystem(false));
            const FullSystemResult base = base_sim.run(rec.traces());
            const double base_cycles =
                base.stats.valueOf("system.cycles");

            WorkRes res;
            res.row = {name};
            res.snaps = {{name + "/baseline", name, base.stats}};
            for (u32 extra : extras) {
                // The extra latency is the ablation axis; it
                // overrides the machine file's setting.
                FullSystemConfig cfg = machine.fullSystem(true, 4);
                cfg.backgroundFetchExtraLatency = extra;
                FullSystemSim sim(cfg);
                const FullSystemResult r = sim.run(rec.traces());
                res.row.push_back(fmtPercent(
                    base_cycles / r.stats.valueOf("system.cycles") - 1.0,
                    1));
                res.snaps.push_back(
                    {name + "/extra-" + std::to_string(extra), name,
                     r.stats});
            }
            return res;
        },
        opts, [&names](u64 i) { return names[i]; });

    std::vector<NamedSnapshot> snaps;
    for (const auto &r : outcome.results) {
        if (!r) // failed workload: listed in the failures section
            continue;
        table.addRow(r->row);
        snaps.insert(snaps.end(), r->snaps.begin(), r->snaps.end());
    }

    table.print("LVA (degree 4) speedup with deprioritized training "
                "fetches");
    table.writeCsv(resultsPath("ablation_slow_fetch.csv"));
    std::printf("\nwrote %s\n",
                resultsPath("ablation_slow_fetch.csv").c_str());
    std::printf("wrote %s\n",
                writeStatsJson("ablation_slow_fetch", snaps,
                               outcome.failures).c_str());
    return reportSweepFailures(outcome.failures, names.size());
}
