/**
 * @file
 * Ablation: deprioritized training fetches (paper section VI-C).
 * Because LVA's fetches only train the approximator, they can travel
 * over a slow, low-energy NoC/memory path; this bench adds 0/100/300
 * extra cycles to every background fetch and shows that speedup is
 * essentially unaffected — the paper's value-delay-resilience argument
 * applied to the full system.
 */

#include <cstdio>

#include "cpu/trace.hh"
#include "eval/fullsystem_eval.hh"
#include "eval/sweep.hh"
#include "util/bench_timer.hh"
#include "util/table.hh"
#include "workloads/workload.hh"

int
main()
{
    using namespace lva;

    BenchTimer timer("ablation_slow_fetch");
    const u32 extras[] = {0, 100, 300};
    std::printf("Slow-training-fetch ablation (scale=%.2f)\n",
                fsScaleFromEnv());

    Table table({"benchmark", "+0 cycles", "+100 cycles",
                 "+300 cycles"});

    const auto &names = allWorkloadNames();
    SweepRunner runner;
    const auto rows = runner.map(names.size(), [&](u64 i) {
        const std::string &name = names[i];
        WorkloadParams params;
        params.seed = 1;
        params.scale = fsScaleFromEnv();
        auto w = makeWorkload(name, params);
        w->generate();
        TraceRecorder rec(params.threads);
        w->run(rec);

        FullSystemSim base_sim(FullSystemConfig::baseline());
        const FullSystemResult base = base_sim.run(rec.traces());

        std::vector<std::string> row = {name};
        for (u32 extra : extras) {
            FullSystemConfig cfg = FullSystemConfig::lva(4);
            cfg.backgroundFetchExtraLatency = extra;
            FullSystemSim sim(cfg);
            const FullSystemResult r = sim.run(rec.traces());
            row.push_back(
                fmtPercent(base.cycles / r.cycles - 1.0, 1));
        }
        return row;
    });

    for (const auto &row : rows)
        table.addRow(row);

    table.print("LVA (degree 4) speedup with deprioritized training "
                "fetches");
    table.writeCsv("results/ablation_slow_fetch.csv");
    std::printf("\nwrote results/ablation_slow_fetch.csv\n");
    return 0;
}
