/**
 * @file
 * google-benchmark microbenchmarks of the approximator data path:
 * lookup+generate throughput across GHB sizes, training throughput,
 * steady state on a fully trained table, and the idealized LVP
 * baseline for comparison.
 */

#include <benchmark/benchmark.h>

#include "core/approximator.hh"
#include "core/lvp.hh"
#include "util/random.hh"

namespace {

using namespace lva;

ApproximatorConfig
configWithGhb(u32 ghb)
{
    ApproximatorConfig cfg;
    cfg.ghbEntries = ghb;
    cfg.valueDelay = 4;
    return cfg;
}

void
BM_ApproximatorMiss(benchmark::State &state)
{
    LoadValueApproximator lva(
        configWithGhb(static_cast<u32>(state.range(0))));
    Rng rng(1);
    u64 pc = 0;
    for (auto _ : state) {
        const LoadSiteId site =
            static_cast<LoadSiteId>(0x400 + (pc++ % 64) * 4);
        const MissResponse r =
            lva.onMiss(site, Value::fromFloat(
                                 static_cast<float>(rng.uniform())));
        benchmark::DoNotOptimize(r);
    }
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_ApproximatorMiss)->Arg(0)->Arg(1)->Arg(2)->Arg(4);

void
BM_ApproximatorHit(benchmark::State &state)
{
    LoadValueApproximator lva(configWithGhb(4));
    Rng rng(1);
    for (auto _ : state) {
        lva.onHit(0x400, Value::fromFloat(
                             static_cast<float>(rng.uniform())));
    }
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_ApproximatorHit);

void
BM_ApproximatorDegree(benchmark::State &state)
{
    ApproximatorConfig cfg;
    cfg.approxDegree = static_cast<u32>(state.range(0));
    cfg.valueDelay = 0;
    LoadValueApproximator lva(cfg);
    lva.onMiss(0x400, Value::fromInt(7));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            lva.onMiss(0x400, Value::fromInt(7)));
    }
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_ApproximatorDegree)->Arg(0)->Arg(16);

/**
 * Steady state on a fully trained table: a fixed working set of load
 * sites is driven to confident before timing, so the measured loop is
 * the approximate-hit fast path — hash, probe, memoized estimate —
 * with training only on the confidence-window misses the value walk
 * provokes. This is the regime the sweeps spend most of their time
 * in, and the one the estimate cache targets.
 */
void
BM_ApproximatorTrainedSteadyState(benchmark::State &state)
{
    ApproximatorConfig cfg = configWithGhb(2);
    cfg.approxDegree = 2;
    LoadValueApproximator lva(cfg);
    Rng rng(7);

    constexpr u32 kSites = 64;
    double walk[kSites];
    for (u32 s = 0; s < kSites; ++s)
        walk[s] = 100.0 + s;

    const auto step = [&](u32 s) {
        walk[s] += (static_cast<double>(rng.below(2001)) - 1000.0) /
                   997'000.0; // tiny drift: stays inside the window
        return Value::fromDouble(walk[s]);
    };

    // Train to confidence before the timed region.
    for (u32 round = 0; round < 64; ++round)
        for (u32 s = 0; s < kSites; ++s)
            benchmark::DoNotOptimize(
                lva.onMiss(0x400 + 4 * s, step(s)));

    u64 i = 0;
    for (auto _ : state) {
        const u32 s = static_cast<u32>(i++ % kSites);
        benchmark::DoNotOptimize(lva.onMiss(0x400 + 4 * s, step(s)));
    }
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_ApproximatorTrainedSteadyState);

void
BM_IdealizedLvpMiss(benchmark::State &state)
{
    IdealizedLvp lvp(configWithGhb(0));
    Rng rng(1);
    for (auto _ : state) {
        benchmark::DoNotOptimize(lvp.onMiss(
            0x400,
            Value::fromInt(static_cast<i64>(rng.below(16)))));
    }
    state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_IdealizedLvpMiss);

} // namespace

BENCHMARK_MAIN();
