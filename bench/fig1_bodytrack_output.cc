/**
 * @file
 * Regenerates paper Figure 1: the bodytrack output under precise
 * execution (a) and under load value approximation (b), rendered as
 * PGM images, plus the tracking output error.
 */

#include <cstdio>
#include <memory>

#include "core/approx_memory.hh"
#include "eval/stat_report.hh"
#include "eval/sweep.hh"
#include "util/bench_timer.hh"
#include "util/results_dir.hh"
#include "util/table.hh"
#include "workloads/bodytrack.hh"

int
main(int argc, char **argv)
{
    using namespace lva;

    BenchTimer timer("fig1_bodytrack_output");
    WorkloadParams params;
    params.seed = 1;

    // Run precise (index 0) and baseline LVA (index 1) in parallel,
    // keeping each run's registry snapshot for the JSON export.
    struct Run
    {
        std::unique_ptr<BodytrackWorkload> w;
        StatSnapshot stats;
    };
    const SweepOptions opts =
        sweepOptionsFromCli("fig1_bodytrack_output", argc, argv);
    const ApproxMemory::Config lva_cfg = machineBaseLva(opts);
    params.threads = lva_cfg.threads;
    SweepRunner runner;
    auto outcome = runner.mapChecked(
        2,
        [&](u64 i) {
            Run run;
            run.w = std::make_unique<BodytrackWorkload>(params);
            run.w->generate();
            ApproxMemory mem(i == 0
                                 ? Evaluator::preciseBaseFor(lva_cfg)
                                 : lva_cfg);
            run.w->run(mem);
            run.stats = mem.snapshot();
            return run;
        },
        opts,
        [](u64 i) { return std::string(i == 0 ? "precise" : "lva"); });
    if (!outcome.ok()) {
        // The figure is a comparison: without both runs there is
        // nothing to render, but whatever completed still exports.
        std::vector<NamedSnapshot> snaps;
        if (outcome.results[0])
            snaps.push_back(
                {"precise", "bodytrack", outcome.results[0]->stats});
        if (outcome.results[1])
            snaps.push_back(
                {"lva", "bodytrack", outcome.results[1]->stats});
        std::printf("wrote %s\n",
                    writeStatsJson("fig1_bodytrack_output", snaps,
                                   outcome.failures).c_str());
        return reportSweepFailures(outcome.failures, 2);
    }
    auto &runs = outcome.results;
    BodytrackWorkload &precise = *runs[0]->w;
    BodytrackWorkload &approx = *runs[1]->w;

    precise.renderTrack().writePgm(resultsPath("fig1_precise.pgm"));
    approx.renderTrack().writePgm(resultsPath("fig1_approx.pgm"));

    const double err = approx.outputErrorVs(precise);
    std::printf("Figure 1: bodytrack output\n");
    std::printf("  precise track -> results/fig1_precise.pgm\n");
    std::printf("  LVA track     -> results/fig1_approx.pgm\n");
    std::printf("  tracking output error: %.1f%% (paper: 7.7%%)\n",
                err * 100.0);

    const double img_diff = GrayImage::meanAbsDiff(
        precise.renderTrack(), approx.renderTrack());
    std::printf("  mean absolute pixel difference: %.2f / 255 "
                "(nearly indiscernible, as in the paper)\n", img_diff);

    std::printf("wrote %s\n",
                writeStatsJson(
                    "fig1_bodytrack_output",
                    {{"precise", "bodytrack", runs[0]->stats},
                     {"lva", "bodytrack", runs[1]->stats}})
                    .c_str());
    return 0;
}
