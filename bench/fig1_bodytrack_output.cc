/**
 * @file
 * Regenerates paper Figure 1: the bodytrack output under precise
 * execution (a) and under load value approximation (b), rendered as
 * PGM images, plus the tracking output error.
 */

#include <cstdio>

#include "core/approx_memory.hh"
#include "eval/evaluator.hh"
#include "util/table.hh"
#include "workloads/bodytrack.hh"

int
main()
{
    using namespace lva;

    WorkloadParams params;
    params.seed = 1;

    // Precise run.
    BodytrackWorkload precise(params);
    precise.generate();
    ApproxMemory precise_mem(Evaluator::preciseConfig());
    precise.run(precise_mem);

    // Approximate run (baseline LVA).
    BodytrackWorkload approx(params);
    approx.generate();
    ApproxMemory approx_mem(Evaluator::baselineLva());
    approx.run(approx_mem);

    precise.renderTrack().writePgm("results/fig1_precise.pgm");
    approx.renderTrack().writePgm("results/fig1_approx.pgm");

    const double err = approx.outputErrorVs(precise);
    std::printf("Figure 1: bodytrack output\n");
    std::printf("  precise track -> results/fig1_precise.pgm\n");
    std::printf("  LVA track     -> results/fig1_approx.pgm\n");
    std::printf("  tracking output error: %.1f%% (paper: 7.7%%)\n",
                err * 100.0);

    const double img_diff = GrayImage::meanAbsDiff(
        precise.renderTrack(), approx.renderTrack());
    std::printf("  mean absolute pixel difference: %.2f / 255 "
                "(nearly indiscernible, as in the paper)\n", img_diff);
    return 0;
}
