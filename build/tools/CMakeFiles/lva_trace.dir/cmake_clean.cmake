file(REMOVE_RECURSE
  "CMakeFiles/lva_trace.dir/lva_trace.cc.o"
  "CMakeFiles/lva_trace.dir/lva_trace.cc.o.d"
  "lva_trace"
  "lva_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lva_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
