# Empty dependencies file for lva_trace.
# This may be replaced when dependencies are built.
