# Empty compiler generated dependencies file for lva_explore.
# This may be replaced when dependencies are built.
