file(REMOVE_RECURSE
  "CMakeFiles/lva_explore.dir/lva_explore.cc.o"
  "CMakeFiles/lva_explore.dir/lva_explore.cc.o.d"
  "lva_explore"
  "lva_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lva_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
