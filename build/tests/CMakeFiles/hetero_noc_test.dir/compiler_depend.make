# Empty compiler generated dependencies file for hetero_noc_test.
# This may be replaced when dependencies are built.
