file(REMOVE_RECURSE
  "CMakeFiles/hetero_noc_test.dir/hetero_noc_test.cc.o"
  "CMakeFiles/hetero_noc_test.dir/hetero_noc_test.cc.o.d"
  "hetero_noc_test"
  "hetero_noc_test.pdb"
  "hetero_noc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hetero_noc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
