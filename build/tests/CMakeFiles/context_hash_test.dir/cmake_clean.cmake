file(REMOVE_RECURSE
  "CMakeFiles/context_hash_test.dir/context_hash_test.cc.o"
  "CMakeFiles/context_hash_test.dir/context_hash_test.cc.o.d"
  "context_hash_test"
  "context_hash_test.pdb"
  "context_hash_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/context_hash_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
