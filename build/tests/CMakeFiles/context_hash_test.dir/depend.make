# Empty dependencies file for context_hash_test.
# This may be replaced when dependencies are built.
