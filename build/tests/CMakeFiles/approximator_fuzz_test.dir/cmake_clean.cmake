file(REMOVE_RECURSE
  "CMakeFiles/approximator_fuzz_test.dir/approximator_fuzz_test.cc.o"
  "CMakeFiles/approximator_fuzz_test.dir/approximator_fuzz_test.cc.o.d"
  "approximator_fuzz_test"
  "approximator_fuzz_test.pdb"
  "approximator_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approximator_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
