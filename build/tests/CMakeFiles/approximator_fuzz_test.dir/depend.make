# Empty dependencies file for approximator_fuzz_test.
# This may be replaced when dependencies are built.
