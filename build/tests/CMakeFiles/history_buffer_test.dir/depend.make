# Empty dependencies file for history_buffer_test.
# This may be replaced when dependencies are built.
