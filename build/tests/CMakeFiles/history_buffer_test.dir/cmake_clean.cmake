file(REMOVE_RECURSE
  "CMakeFiles/history_buffer_test.dir/history_buffer_test.cc.o"
  "CMakeFiles/history_buffer_test.dir/history_buffer_test.cc.o.d"
  "history_buffer_test"
  "history_buffer_test.pdb"
  "history_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/history_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
