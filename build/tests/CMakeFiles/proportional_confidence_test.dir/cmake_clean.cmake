file(REMOVE_RECURSE
  "CMakeFiles/proportional_confidence_test.dir/proportional_confidence_test.cc.o"
  "CMakeFiles/proportional_confidence_test.dir/proportional_confidence_test.cc.o.d"
  "proportional_confidence_test"
  "proportional_confidence_test.pdb"
  "proportional_confidence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proportional_confidence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
