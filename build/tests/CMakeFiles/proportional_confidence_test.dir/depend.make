# Empty dependencies file for proportional_confidence_test.
# This may be replaced when dependencies are built.
