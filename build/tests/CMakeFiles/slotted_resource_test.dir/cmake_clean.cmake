file(REMOVE_RECURSE
  "CMakeFiles/slotted_resource_test.dir/slotted_resource_test.cc.o"
  "CMakeFiles/slotted_resource_test.dir/slotted_resource_test.cc.o.d"
  "slotted_resource_test"
  "slotted_resource_test.pdb"
  "slotted_resource_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/slotted_resource_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
