# Empty compiler generated dependencies file for slotted_resource_test.
# This may be replaced when dependencies are built.
