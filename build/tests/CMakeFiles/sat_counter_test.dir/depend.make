# Empty dependencies file for sat_counter_test.
# This may be replaced when dependencies are built.
