file(REMOVE_RECURSE
  "CMakeFiles/lvp_test.dir/lvp_test.cc.o"
  "CMakeFiles/lvp_test.dir/lvp_test.cc.o.d"
  "lvp_test"
  "lvp_test.pdb"
  "lvp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lvp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
