# Empty compiler generated dependencies file for lvp_test.
# This may be replaced when dependencies are built.
