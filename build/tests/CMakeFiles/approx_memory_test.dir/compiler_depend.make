# Empty compiler generated dependencies file for approx_memory_test.
# This may be replaced when dependencies are built.
