file(REMOVE_RECURSE
  "CMakeFiles/approx_memory_test.dir/approx_memory_test.cc.o"
  "CMakeFiles/approx_memory_test.dir/approx_memory_test.cc.o.d"
  "approx_memory_test"
  "approx_memory_test.pdb"
  "approx_memory_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approx_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
