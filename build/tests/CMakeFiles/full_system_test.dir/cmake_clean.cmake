file(REMOVE_RECURSE
  "CMakeFiles/full_system_test.dir/full_system_test.cc.o"
  "CMakeFiles/full_system_test.dir/full_system_test.cc.o.d"
  "full_system_test"
  "full_system_test.pdb"
  "full_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/full_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
