# Empty dependencies file for full_system_test.
# This may be replaced when dependencies are built.
