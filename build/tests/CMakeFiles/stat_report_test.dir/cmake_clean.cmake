file(REMOVE_RECURSE
  "CMakeFiles/stat_report_test.dir/stat_report_test.cc.o"
  "CMakeFiles/stat_report_test.dir/stat_report_test.cc.o.d"
  "stat_report_test"
  "stat_report_test.pdb"
  "stat_report_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stat_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
