# Empty dependencies file for stat_report_test.
# This may be replaced when dependencies are built.
