file(REMOVE_RECURSE
  "CMakeFiles/mesi_test.dir/mesi_test.cc.o"
  "CMakeFiles/mesi_test.dir/mesi_test.cc.o.d"
  "mesi_test"
  "mesi_test.pdb"
  "mesi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mesi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
