# Empty dependencies file for mesi_test.
# This may be replaced when dependencies are built.
