file(REMOVE_RECURSE
  "CMakeFiles/approximator_test.dir/approximator_test.cc.o"
  "CMakeFiles/approximator_test.dir/approximator_test.cc.o.d"
  "approximator_test"
  "approximator_test.pdb"
  "approximator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/approximator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
