file(REMOVE_RECURSE
  "CMakeFiles/workload_inputs_test.dir/workload_inputs_test.cc.o"
  "CMakeFiles/workload_inputs_test.dir/workload_inputs_test.cc.o.d"
  "workload_inputs_test"
  "workload_inputs_test.pdb"
  "workload_inputs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_inputs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
