# Empty dependencies file for workload_inputs_test.
# This may be replaced when dependencies are built.
