file(REMOVE_RECURSE
  "CMakeFiles/fig7_value_delay.dir/fig7_value_delay.cc.o"
  "CMakeFiles/fig7_value_delay.dir/fig7_value_delay.cc.o.d"
  "fig7_value_delay"
  "fig7_value_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_value_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
