# Empty dependencies file for fig7_value_delay.
# This may be replaced when dependencies are built.
