file(REMOVE_RECURSE
  "CMakeFiles/fig6_confidence.dir/fig6_confidence.cc.o"
  "CMakeFiles/fig6_confidence.dir/fig6_confidence.cc.o.d"
  "fig6_confidence"
  "fig6_confidence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_confidence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
