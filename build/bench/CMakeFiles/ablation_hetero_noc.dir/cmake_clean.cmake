file(REMOVE_RECURSE
  "CMakeFiles/ablation_hetero_noc.dir/ablation_hetero_noc.cc.o"
  "CMakeFiles/ablation_hetero_noc.dir/ablation_hetero_noc.cc.o.d"
  "ablation_hetero_noc"
  "ablation_hetero_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_hetero_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
