file(REMOVE_RECURSE
  "CMakeFiles/fig4_ghb_mpki.dir/fig4_ghb_mpki.cc.o"
  "CMakeFiles/fig4_ghb_mpki.dir/fig4_ghb_mpki.cc.o.d"
  "fig4_ghb_mpki"
  "fig4_ghb_mpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_ghb_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
