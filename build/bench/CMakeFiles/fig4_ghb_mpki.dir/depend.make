# Empty dependencies file for fig4_ghb_mpki.
# This may be replaced when dependencies are built.
