# Empty dependencies file for ablation_confidence_step.
# This may be replaced when dependencies are built.
