file(REMOVE_RECURSE
  "CMakeFiles/ablation_confidence_step.dir/ablation_confidence_step.cc.o"
  "CMakeFiles/ablation_confidence_step.dir/ablation_confidence_step.cc.o.d"
  "ablation_confidence_step"
  "ablation_confidence_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_confidence_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
