file(REMOVE_RECURSE
  "CMakeFiles/fig1_bodytrack_output.dir/fig1_bodytrack_output.cc.o"
  "CMakeFiles/fig1_bodytrack_output.dir/fig1_bodytrack_output.cc.o.d"
  "fig1_bodytrack_output"
  "fig1_bodytrack_output.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_bodytrack_output.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
