# Empty compiler generated dependencies file for fig1_bodytrack_output.
# This may be replaced when dependencies are built.
