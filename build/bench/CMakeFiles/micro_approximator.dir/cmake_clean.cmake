file(REMOVE_RECURSE
  "CMakeFiles/micro_approximator.dir/micro_approximator.cc.o"
  "CMakeFiles/micro_approximator.dir/micro_approximator.cc.o.d"
  "micro_approximator"
  "micro_approximator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_approximator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
