# Empty compiler generated dependencies file for micro_approximator.
# This may be replaced when dependencies are built.
