file(REMOVE_RECURSE
  "CMakeFiles/fig8_degree_fetches.dir/fig8_degree_fetches.cc.o"
  "CMakeFiles/fig8_degree_fetches.dir/fig8_degree_fetches.cc.o.d"
  "fig8_degree_fetches"
  "fig8_degree_fetches.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_degree_fetches.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
