# Empty dependencies file for fig8_degree_fetches.
# This may be replaced when dependencies are built.
