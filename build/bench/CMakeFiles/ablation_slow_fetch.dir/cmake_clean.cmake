file(REMOVE_RECURSE
  "CMakeFiles/ablation_slow_fetch.dir/ablation_slow_fetch.cc.o"
  "CMakeFiles/ablation_slow_fetch.dir/ablation_slow_fetch.cc.o.d"
  "ablation_slow_fetch"
  "ablation_slow_fetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_slow_fetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
