# Empty dependencies file for fig12_static_loads.
# This may be replaced when dependencies are built.
