file(REMOVE_RECURSE
  "CMakeFiles/fig12_static_loads.dir/fig12_static_loads.cc.o"
  "CMakeFiles/fig12_static_loads.dir/fig12_static_loads.cc.o.d"
  "fig12_static_loads"
  "fig12_static_loads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_static_loads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
