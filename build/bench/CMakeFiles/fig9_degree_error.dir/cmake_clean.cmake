file(REMOVE_RECURSE
  "CMakeFiles/fig9_degree_error.dir/fig9_degree_error.cc.o"
  "CMakeFiles/fig9_degree_error.dir/fig9_degree_error.cc.o.d"
  "fig9_degree_error"
  "fig9_degree_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_degree_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
