# Empty dependencies file for fig13_precision.
# This may be replaced when dependencies are built.
