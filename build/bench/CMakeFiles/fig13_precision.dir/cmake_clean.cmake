file(REMOVE_RECURSE
  "CMakeFiles/fig13_precision.dir/fig13_precision.cc.o"
  "CMakeFiles/fig13_precision.dir/fig13_precision.cc.o.d"
  "fig13_precision"
  "fig13_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
