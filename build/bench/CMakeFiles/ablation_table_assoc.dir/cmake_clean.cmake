file(REMOVE_RECURSE
  "CMakeFiles/ablation_table_assoc.dir/ablation_table_assoc.cc.o"
  "CMakeFiles/ablation_table_assoc.dir/ablation_table_assoc.cc.o.d"
  "ablation_table_assoc"
  "ablation_table_assoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_table_assoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
