# Empty dependencies file for ablation_table_assoc.
# This may be replaced when dependencies are built.
