# Empty dependencies file for fig10_fullsystem.
# This may be replaced when dependencies are built.
