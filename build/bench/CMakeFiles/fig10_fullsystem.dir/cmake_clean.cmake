file(REMOVE_RECURSE
  "CMakeFiles/fig10_fullsystem.dir/fig10_fullsystem.cc.o"
  "CMakeFiles/fig10_fullsystem.dir/fig10_fullsystem.cc.o.d"
  "fig10_fullsystem"
  "fig10_fullsystem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_fullsystem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
