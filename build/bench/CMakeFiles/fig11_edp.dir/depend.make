# Empty dependencies file for fig11_edp.
# This may be replaced when dependencies are built.
