file(REMOVE_RECURSE
  "CMakeFiles/fig11_edp.dir/fig11_edp.cc.o"
  "CMakeFiles/fig11_edp.dir/fig11_edp.cc.o.d"
  "fig11_edp"
  "fig11_edp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_edp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
