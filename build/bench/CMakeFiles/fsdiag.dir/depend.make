# Empty dependencies file for fsdiag.
# This may be replaced when dependencies are built.
