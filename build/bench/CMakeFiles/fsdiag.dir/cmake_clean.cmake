file(REMOVE_RECURSE
  "CMakeFiles/fsdiag.dir/fsdiag.cc.o"
  "CMakeFiles/fsdiag.dir/fsdiag.cc.o.d"
  "fsdiag"
  "fsdiag.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fsdiag.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
