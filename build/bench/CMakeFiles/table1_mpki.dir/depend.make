# Empty dependencies file for table1_mpki.
# This may be replaced when dependencies are built.
