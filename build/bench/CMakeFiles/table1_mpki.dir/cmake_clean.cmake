file(REMOVE_RECURSE
  "CMakeFiles/table1_mpki.dir/table1_mpki.cc.o"
  "CMakeFiles/table1_mpki.dir/table1_mpki.cc.o.d"
  "table1_mpki"
  "table1_mpki.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_mpki.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
