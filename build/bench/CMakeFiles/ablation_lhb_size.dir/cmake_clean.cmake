file(REMOVE_RECURSE
  "CMakeFiles/ablation_lhb_size.dir/ablation_lhb_size.cc.o"
  "CMakeFiles/ablation_lhb_size.dir/ablation_lhb_size.cc.o.d"
  "ablation_lhb_size"
  "ablation_lhb_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_lhb_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
