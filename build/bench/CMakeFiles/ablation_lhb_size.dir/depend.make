# Empty dependencies file for ablation_lhb_size.
# This may be replaced when dependencies are built.
