# Empty compiler generated dependencies file for fig5_ghb_error.
# This may be replaced when dependencies are built.
