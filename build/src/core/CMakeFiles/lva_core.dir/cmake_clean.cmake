file(REMOVE_RECURSE
  "CMakeFiles/lva_core.dir/approx_memory.cc.o"
  "CMakeFiles/lva_core.dir/approx_memory.cc.o.d"
  "CMakeFiles/lva_core.dir/approximator.cc.o"
  "CMakeFiles/lva_core.dir/approximator.cc.o.d"
  "CMakeFiles/lva_core.dir/lvp.cc.o"
  "CMakeFiles/lva_core.dir/lvp.cc.o.d"
  "liblva_core.a"
  "liblva_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lva_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
