# Empty compiler generated dependencies file for lva_core.
# This may be replaced when dependencies are built.
