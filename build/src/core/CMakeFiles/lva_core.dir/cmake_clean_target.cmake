file(REMOVE_RECURSE
  "liblva_core.a"
)
