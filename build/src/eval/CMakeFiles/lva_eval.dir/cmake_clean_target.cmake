file(REMOVE_RECURSE
  "liblva_eval.a"
)
