# Empty dependencies file for lva_eval.
# This may be replaced when dependencies are built.
