file(REMOVE_RECURSE
  "CMakeFiles/lva_eval.dir/evaluator.cc.o"
  "CMakeFiles/lva_eval.dir/evaluator.cc.o.d"
  "CMakeFiles/lva_eval.dir/fullsystem_eval.cc.o"
  "CMakeFiles/lva_eval.dir/fullsystem_eval.cc.o.d"
  "CMakeFiles/lva_eval.dir/stat_report.cc.o"
  "CMakeFiles/lva_eval.dir/stat_report.cc.o.d"
  "liblva_eval.a"
  "liblva_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lva_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
