# Empty dependencies file for lva_cpu.
# This may be replaced when dependencies are built.
