file(REMOVE_RECURSE
  "CMakeFiles/lva_cpu.dir/trace.cc.o"
  "CMakeFiles/lva_cpu.dir/trace.cc.o.d"
  "CMakeFiles/lva_cpu.dir/trace_io.cc.o"
  "CMakeFiles/lva_cpu.dir/trace_io.cc.o.d"
  "liblva_cpu.a"
  "liblva_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lva_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
