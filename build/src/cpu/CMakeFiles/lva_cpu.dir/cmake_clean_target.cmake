file(REMOVE_RECURSE
  "liblva_cpu.a"
)
