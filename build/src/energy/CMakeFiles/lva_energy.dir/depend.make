# Empty dependencies file for lva_energy.
# This may be replaced when dependencies are built.
