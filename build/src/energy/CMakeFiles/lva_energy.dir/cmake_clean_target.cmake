file(REMOVE_RECURSE
  "liblva_energy.a"
)
