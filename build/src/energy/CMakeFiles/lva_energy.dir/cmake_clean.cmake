file(REMOVE_RECURSE
  "CMakeFiles/lva_energy.dir/energy_model.cc.o"
  "CMakeFiles/lva_energy.dir/energy_model.cc.o.d"
  "liblva_energy.a"
  "liblva_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lva_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
