file(REMOVE_RECURSE
  "CMakeFiles/lva_workloads.dir/blackscholes.cc.o"
  "CMakeFiles/lva_workloads.dir/blackscholes.cc.o.d"
  "CMakeFiles/lva_workloads.dir/bodytrack.cc.o"
  "CMakeFiles/lva_workloads.dir/bodytrack.cc.o.d"
  "CMakeFiles/lva_workloads.dir/canneal.cc.o"
  "CMakeFiles/lva_workloads.dir/canneal.cc.o.d"
  "CMakeFiles/lva_workloads.dir/ferret.cc.o"
  "CMakeFiles/lva_workloads.dir/ferret.cc.o.d"
  "CMakeFiles/lva_workloads.dir/fluidanimate.cc.o"
  "CMakeFiles/lva_workloads.dir/fluidanimate.cc.o.d"
  "CMakeFiles/lva_workloads.dir/swaptions.cc.o"
  "CMakeFiles/lva_workloads.dir/swaptions.cc.o.d"
  "CMakeFiles/lva_workloads.dir/workload.cc.o"
  "CMakeFiles/lva_workloads.dir/workload.cc.o.d"
  "CMakeFiles/lva_workloads.dir/x264.cc.o"
  "CMakeFiles/lva_workloads.dir/x264.cc.o.d"
  "liblva_workloads.a"
  "liblva_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lva_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
