
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/blackscholes.cc" "src/workloads/CMakeFiles/lva_workloads.dir/blackscholes.cc.o" "gcc" "src/workloads/CMakeFiles/lva_workloads.dir/blackscholes.cc.o.d"
  "/root/repo/src/workloads/bodytrack.cc" "src/workloads/CMakeFiles/lva_workloads.dir/bodytrack.cc.o" "gcc" "src/workloads/CMakeFiles/lva_workloads.dir/bodytrack.cc.o.d"
  "/root/repo/src/workloads/canneal.cc" "src/workloads/CMakeFiles/lva_workloads.dir/canneal.cc.o" "gcc" "src/workloads/CMakeFiles/lva_workloads.dir/canneal.cc.o.d"
  "/root/repo/src/workloads/ferret.cc" "src/workloads/CMakeFiles/lva_workloads.dir/ferret.cc.o" "gcc" "src/workloads/CMakeFiles/lva_workloads.dir/ferret.cc.o.d"
  "/root/repo/src/workloads/fluidanimate.cc" "src/workloads/CMakeFiles/lva_workloads.dir/fluidanimate.cc.o" "gcc" "src/workloads/CMakeFiles/lva_workloads.dir/fluidanimate.cc.o.d"
  "/root/repo/src/workloads/swaptions.cc" "src/workloads/CMakeFiles/lva_workloads.dir/swaptions.cc.o" "gcc" "src/workloads/CMakeFiles/lva_workloads.dir/swaptions.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/lva_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/lva_workloads.dir/workload.cc.o.d"
  "/root/repo/src/workloads/x264.cc" "src/workloads/CMakeFiles/lva_workloads.dir/x264.cc.o" "gcc" "src/workloads/CMakeFiles/lva_workloads.dir/x264.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/lva_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lva_util.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/lva_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/lva_prefetch.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
