# Empty dependencies file for lva_workloads.
# This may be replaced when dependencies are built.
