file(REMOVE_RECURSE
  "liblva_workloads.a"
)
