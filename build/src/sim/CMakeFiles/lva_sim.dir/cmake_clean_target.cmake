file(REMOVE_RECURSE
  "liblva_sim.a"
)
