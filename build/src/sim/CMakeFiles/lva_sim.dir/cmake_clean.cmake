file(REMOVE_RECURSE
  "CMakeFiles/lva_sim.dir/full_system.cc.o"
  "CMakeFiles/lva_sim.dir/full_system.cc.o.d"
  "liblva_sim.a"
  "liblva_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lva_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
