# Empty dependencies file for lva_sim.
# This may be replaced when dependencies are built.
