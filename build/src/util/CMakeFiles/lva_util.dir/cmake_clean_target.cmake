file(REMOVE_RECURSE
  "liblva_util.a"
)
