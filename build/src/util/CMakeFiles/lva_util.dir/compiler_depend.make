# Empty compiler generated dependencies file for lva_util.
# This may be replaced when dependencies are built.
