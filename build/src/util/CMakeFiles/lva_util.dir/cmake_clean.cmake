file(REMOVE_RECURSE
  "CMakeFiles/lva_util.dir/logging.cc.o"
  "CMakeFiles/lva_util.dir/logging.cc.o.d"
  "CMakeFiles/lva_util.dir/pgm.cc.o"
  "CMakeFiles/lva_util.dir/pgm.cc.o.d"
  "CMakeFiles/lva_util.dir/stat_dump.cc.o"
  "CMakeFiles/lva_util.dir/stat_dump.cc.o.d"
  "CMakeFiles/lva_util.dir/stats.cc.o"
  "CMakeFiles/lva_util.dir/stats.cc.o.d"
  "CMakeFiles/lva_util.dir/table.cc.o"
  "CMakeFiles/lva_util.dir/table.cc.o.d"
  "CMakeFiles/lva_util.dir/value.cc.o"
  "CMakeFiles/lva_util.dir/value.cc.o.d"
  "liblva_util.a"
  "liblva_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lva_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
