file(REMOVE_RECURSE
  "liblva_mem.a"
)
