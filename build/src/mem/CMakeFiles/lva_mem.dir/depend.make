# Empty dependencies file for lva_mem.
# This may be replaced when dependencies are built.
