file(REMOVE_RECURSE
  "CMakeFiles/lva_mem.dir/cache.cc.o"
  "CMakeFiles/lva_mem.dir/cache.cc.o.d"
  "liblva_mem.a"
  "liblva_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lva_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
