# Empty dependencies file for lva_prefetch.
# This may be replaced when dependencies are built.
