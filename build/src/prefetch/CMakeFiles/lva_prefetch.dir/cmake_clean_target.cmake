file(REMOVE_RECURSE
  "liblva_prefetch.a"
)
