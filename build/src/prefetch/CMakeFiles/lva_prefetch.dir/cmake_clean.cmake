file(REMOVE_RECURSE
  "CMakeFiles/lva_prefetch.dir/ghb_prefetcher.cc.o"
  "CMakeFiles/lva_prefetch.dir/ghb_prefetcher.cc.o.d"
  "liblva_prefetch.a"
  "liblva_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lva_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
