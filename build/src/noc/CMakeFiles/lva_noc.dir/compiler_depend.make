# Empty compiler generated dependencies file for lva_noc.
# This may be replaced when dependencies are built.
