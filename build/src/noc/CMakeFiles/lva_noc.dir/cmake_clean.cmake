file(REMOVE_RECURSE
  "CMakeFiles/lva_noc.dir/mesh.cc.o"
  "CMakeFiles/lva_noc.dir/mesh.cc.o.d"
  "liblva_noc.a"
  "liblva_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lva_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
