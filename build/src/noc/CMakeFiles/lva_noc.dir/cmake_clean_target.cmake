file(REMOVE_RECURSE
  "liblva_noc.a"
)
