
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/custom_workload.cpp" "examples/CMakeFiles/custom_workload.dir/custom_workload.cpp.o" "gcc" "examples/CMakeFiles/custom_workload.dir/custom_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/lva_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/lva_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/lva_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/lva_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/lva_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/lva_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/lva_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/lva_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/lva_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/lva_energy.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
