# Empty dependencies file for annealing_placement.
# This may be replaced when dependencies are built.
