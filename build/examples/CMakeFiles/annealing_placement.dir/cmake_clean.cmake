file(REMOVE_RECURSE
  "CMakeFiles/annealing_placement.dir/annealing_placement.cpp.o"
  "CMakeFiles/annealing_placement.dir/annealing_placement.cpp.o.d"
  "annealing_placement"
  "annealing_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/annealing_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
