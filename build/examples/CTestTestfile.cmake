# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example.quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example.quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.image_search "/root/repo/build/examples/image_search")
set_tests_properties(example.image_search PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.annealing_placement "/root/repo/build/examples/annealing_placement")
set_tests_properties(example.annealing_placement PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example.custom_workload "/root/repo/build/examples/custom_workload")
set_tests_properties(example.custom_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
