#!/usr/bin/env bash
# Build, test and regenerate every paper table/figure + ablation.
# Usage: scripts/run_all.sh [quick]
#   quick: 1 seed, 30% working sets (smoke run) + the static-analysis
#          gate (scripts/lint.sh) + the sanitizer matrix: full ctest
#          suite under ASan+UBSan and a ThreadSanitizer build of the
#          concurrency determinism check + the documentation gates
#          (scripts/check_docs.sh) + the evaluation-daemon smoke
#          (scripts/serve_smoke.sh)
#
# Parallelism: every bench driver fans its sweep grid out over
# LVA_JOBS worker threads (default: hardware concurrency). LVA_JOBS=1
# reproduces the historical serial path; results are byte-identical
# either way.
#
# Per-driver wall-clock times are aggregated into
# results/bench_times.json so successive PRs have a perf trajectory
# to regress against.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=full
if [[ "${1:-}" == "quick" ]]; then
    MODE=quick
    export LVA_SEEDS=1
    export LVA_SCALE=0.3
fi

JOBS="${LVA_JOBS:-$(nproc)}"

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

if [[ "$MODE" == "quick" ]]; then
    # Static-analysis gate: lva_lint determinism rules, the
    # lva_audit whole-project model (layering, stat/knob/fault
    # registries, lock order), and clang-tidy where installed.
    # Fails the run on any unsuppressed finding, mirroring the
    # check_docs.sh gate below.
    scripts/lint.sh

    # Sanitizer matrix (DESIGN.md §12).  ASan and UBSan compose in one
    # tree and the entire ctest suite runs under both, so heap misuse
    # or UB anywhere in the simulator fails the smoke run.
    cmake -B build-asan -G Ninja -DLVA_ASAN=ON -DLVA_UBSAN=ON
    cmake --build build-asan
    ctest --test-dir build-asan --output-on-failure

    # ThreadSanitizer configuration: the gtest-free determinism check
    # is fully instrumented, so races in the thread pool or the
    # shared golden-run cache fail the run here.
    cmake -B build-tsan -G Ninja -DLVA_TSAN=ON
    cmake --build build-tsan --target tsan_sweep_check
    ./build-tsan/tests/tsan_sweep_check

    # Documentation gates, all two-way: docs/metrics.md vs the
    # registry self-dump, the README knob table vs the LVA_* literals
    # in the sources, docs/reproducing.md vs bench/*.cc.
    scripts/check_docs.sh build/tools/lva_stats_catalog

    # Evaluation daemon: served sweeps must be byte-identical to the
    # direct driver export, with concurrent clients, and SIGTERM must
    # drain to exit 0 (docs/serving.md).
    scripts/serve_smoke.sh build
fi

declare -A BENCH_SECONDS
BENCH_ORDER=()
total_ms=0

# Fault tolerance (DESIGN.md §13): every sweep driver records its
# completed points into results/checkpoints/<driver>.jsonl, so a
# killed run can restart with LVA_RESUME=1 (or --resume) and skip the
# work it already finished. The knob travels via the environment, not
# argv, because google-benchmark micro_* binaries reject our flags.
export LVA_CHECKPOINT=1

for b in build/bench/*; do
    [[ -x "$b" && -f "$b" ]] || continue
    name="$(basename "$b")"
    echo "### $name"
    start_ms=$(date +%s%3N)
    "$b"
    end_ms=$(date +%s%3N)
    elapsed_ms=$((end_ms - start_ms))
    total_ms=$((total_ms + elapsed_ms))
    BENCH_SECONDS[$name]=$(awk -v ms="$elapsed_ms" \
        'BEGIN { printf "%.3f", ms / 1000.0 }')
    BENCH_ORDER+=("$name")
done

# Hot-path perf trajectory (docs/performance.md): the hotpath_loads
# driver just ran in the loop above and wrote its loads/sec +
# value-digest report; promote it to the repo root so the trajectory
# is versioned PR over PR.
if [[ -f results/hotpath_loads.json ]]; then
    cp results/hotpath_loads.json BENCH_hotpath.json
    echo "wrote BENCH_hotpath.json"
fi

mkdir -p results
{
    echo "{"
    echo "  \"mode\": \"$MODE\","
    echo "  \"jobs\": $JOBS,"
    echo "  \"seeds\": \"${LVA_SEEDS:-default}\","
    echo "  \"scale\": \"${LVA_SCALE:-default}\","
    echo "  \"total_seconds\": $(awk -v ms="$total_ms" \
        'BEGIN { printf "%.3f", ms / 1000.0 }'),"
    echo "  \"benches\": {"
    n=${#BENCH_ORDER[@]}
    i=0
    for name in "${BENCH_ORDER[@]}"; do
        i=$((i + 1))
        sep=","
        [[ $i -eq $n ]] && sep=""
        echo "    \"$name\": ${BENCH_SECONDS[$name]}$sep"
    done
    echo "  }"
    echo "}"
} > results/bench_times.json

echo "wrote results/bench_times.json (total $(awk -v ms="$total_ms" \
    'BEGIN { printf "%.1f", ms / 1000.0 }')s across ${#BENCH_ORDER[@]} \
drivers, jobs=$JOBS)"
