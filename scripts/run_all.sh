#!/usr/bin/env bash
# Build, test and regenerate every paper table/figure + ablation.
# Usage: scripts/run_all.sh [quick]
#   quick: 1 seed, 30% working sets (smoke run)
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "quick" ]]; then
    export LVA_SEEDS=1
    export LVA_SCALE=0.3
fi

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/*; do
    echo "### $b"
    "$b"
done
