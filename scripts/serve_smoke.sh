#!/usr/bin/env bash
# Smoke test for the evaluation daemon and fleet (docs/serving.md):
# prove that a sweep submitted through lva_served/lva_client — or
# through the lva_fleet frontend at any fleet size — returns the exact
# bytes the bench driver writes to results/stats/<driver>.json.
#
# For LVA_JOBS in {1, 4}:
#   1. run build/bench/fig5_ghb_error directly (the reference export),
#   2. start lva_served on an ephemeral port with the same settings,
#   3. submit the same 28-point sweep from TWO concurrent clients,
#   4. cmp(1) both served exports against the driver's file,
#   5. SIGTERM the daemon and require a drained exit 0.
#
# Then the topology legs (docs/topology.md): ONE daemon serves the
# same sweep on both examples/machine-*.json topologies, each
# byte-compared against its direct `driver --machine` run — two
# machines, one binary, no rebuild — and the two exports must differ
# (a silently-ignored config would make them identical).
#
# Then for fleet sizes {1, 3} (the scale-out byte-identity recipe,
# docs/serving.md):
#   6. start lva_fleet with a 2-entry golden cache per worker (the
#      28-point grid spans 7 workloads, so evictions are guaranteed),
#   7. on the 3-worker leg, arm LVA_FLEET_FAULT so the worker that
#      receives the sweep aborts mid-request — the frontend must
#      respawn it and the retried request must still match,
#   8. cmp(1) both served exports against the same reference,
#   9. on the 1-worker leg, require serve.cache.evictions > 0 via the
#      stats op, then SIGTERM and require a drained exit 0.
#
# Usage: scripts/serve_smoke.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
SERVED="$BUILD/tools/lva_served"
CLIENT="$BUILD/tools/lva_client"
FLEET="$BUILD/tools/lva_fleet"
DRIVER="$BUILD/bench/fig5_ghb_error"

for bin in "$SERVED" "$CLIENT" "$FLEET" "$DRIVER"; do
    if [[ ! -x "$bin" ]]; then
        echo "serve_smoke: $bin not built (cmake --build $BUILD)" >&2
        exit 1
    fi
done

# Seconds-scale evaluation; identical settings for driver and daemon.
export LVA_SEEDS=1
export LVA_SCALE=0.05
unset LVA_CHECKPOINT LVA_RESUME LVA_FAULT LVA_POINT_TIMEOUT_MS \
      LVA_RETRIES LVA_TRACE

work="$(mktemp -d)"
daemon_pid=""
cleanup() {
    [[ -n "$daemon_pid" ]] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

# The exact fig5_ghb_error sweep grid (bench/fig5_ghb_error.cc):
# every workload x GHB size, baseline config otherwise.
points="$work/points.json"
{
    echo "["
    sep=""
    for w in blackscholes bodytrack canneal ferret fluidanimate \
             swaptions x264; do
        for g in 0 1 2 4; do
            printf '%s  {"label": "ghb-%s", "workload": "%s", "config": {"ghb": %s}}' \
                   "$sep" "$g" "$w" "$g"
            sep=$',\n'
        done
    done
    echo
    echo "]"
} > "$points"

for jobs in 1 4; do
    echo "serve_smoke: LVA_JOBS=$jobs — direct driver run"
    LVA_JOBS="$jobs" LVA_RESULTS_DIR="$work/direct$jobs" \
        "$DRIVER" > /dev/null
    reference="$work/direct$jobs/stats/fig5_ghb_error.json"

    log="$work/served$jobs.log"
    LVA_JOBS="$jobs" "$SERVED" --port 0 --workers 2 > "$log" 2>&1 &
    daemon_pid=$!

    port=""
    for _ in $(seq 1 100); do
        port="$(grep -oE '127\.0\.0\.1:[0-9]+' "$log" 2>/dev/null \
                | head -1 | cut -d: -f2 || true)"
        [[ -n "$port" ]] && break
        if ! kill -0 "$daemon_pid" 2>/dev/null; then
            echo "serve_smoke: daemon died at startup:" >&2
            sed 's/^/  /' "$log" >&2
            exit 1
        fi
        sleep 0.05
    done
    if [[ -z "$port" ]]; then
        echo "serve_smoke: daemon never announced its port" >&2
        exit 1
    fi

    echo "serve_smoke: LVA_JOBS=$jobs — two concurrent served sweeps" \
         "(port $port)"
    "$CLIENT" --port "$port" sweep --driver fig5_ghb_error \
        --points "$points" --out "$work/served$jobs.a.json" \
        2> /dev/null &
    client_a=$!
    "$CLIENT" --port "$port" sweep --driver fig5_ghb_error \
        --points "$points" --out "$work/served$jobs.b.json" \
        2> /dev/null &
    client_b=$!
    wait "$client_a"
    wait "$client_b"

    cmp "$reference" "$work/served$jobs.a.json"
    cmp "$reference" "$work/served$jobs.b.json"
    echo "serve_smoke: LVA_JOBS=$jobs — served exports byte-identical"

    kill -TERM "$daemon_pid"
    rc=0
    wait "$daemon_pid" || rc=$?
    daemon_pid=""
    if [[ "$rc" -ne 0 ]]; then
        echo "serve_smoke: daemon exited $rc on SIGTERM (want 0):" >&2
        sed 's/^/  /' "$log" >&2
        exit 1
    fi
    echo "serve_smoke: LVA_JOBS=$jobs — SIGTERM drained, exit 0"
done

# ---- topology legs: the same binaries replay two lva-machine-v1
# config files with no rebuild (docs/topology.md); ONE daemon serves
# both machines, each byte-identical to its direct driver run -------
log="$work/machines.log"
LVA_JOBS=2 "$SERVED" --port 0 --workers 2 > "$log" 2>&1 &
daemon_pid=$!
port=""
for _ in $(seq 1 100); do
    port="$(grep -oE '127\.0\.0\.1:[0-9]+' "$log" 2>/dev/null \
            | head -1 | cut -d: -f2 || true)"
    [[ -n "$port" ]] && break
    if ! kill -0 "$daemon_pid" 2>/dev/null; then
        echo "serve_smoke: daemon died at startup:" >&2
        sed 's/^/  /' "$log" >&2
        exit 1
    fi
    sleep 0.05
done
if [[ -z "$port" ]]; then
    echo "serve_smoke: daemon never announced its port" >&2
    exit 1
fi

for machine in examples/machine-2core.json examples/machine-hetero.json
do
    tag="$(basename "$machine" .json)"
    echo "serve_smoke: machine=$tag — direct vs served (port $port)"
    LVA_JOBS=2 LVA_RESULTS_DIR="$work/m-$tag" \
        "$DRIVER" --machine "$machine" > /dev/null
    "$CLIENT" --port "$port" sweep --driver fig5_ghb_error \
        --points "$points" --machine "$machine" \
        --out "$work/m-$tag.served.json" 2> /dev/null
    cmp "$work/m-$tag/stats/fig5_ghb_error.json" \
        "$work/m-$tag.served.json"
    echo "serve_smoke: machine=$tag — served export byte-identical"
done

# The two topologies must actually be different machines: identical
# exports would mean the config file silently did not take effect.
if cmp -s "$work/m-machine-2core/stats/fig5_ghb_error.json" \
          "$work/m-machine-hetero/stats/fig5_ghb_error.json"; then
    echo "serve_smoke: both machine configs exported identical" \
         "bytes — --machine did not take effect" >&2
    exit 1
fi
echo "serve_smoke: machine legs — two topologies, one daemon, no rebuild"

kill -TERM "$daemon_pid"
rc=0
wait "$daemon_pid" || rc=$?
daemon_pid=""
if [[ "$rc" -ne 0 ]]; then
    echo "serve_smoke: daemon exited $rc on SIGTERM (want 0):" >&2
    sed 's/^/  /' "$log" >&2
    exit 1
fi

# ---- fleet legs: byte-identity across fleet sizes, a squeezed golden
# cache, and an injected worker kill --------------------------------
reference="$work/direct1/stats/fig5_ghb_error.json"

for fleet in 1 3; do
    log="$work/fleet$fleet.log"
    fault=""
    if [[ "$fleet" -eq 3 ]]; then
        # Every worker's FIRST incarnation dies on its first request;
        # respawns come up clean (the frontend never re-arms them).
        fault='*:serve.request.0=abort'
    fi
    echo "serve_smoke: fleet=$fleet — starting frontend" \
         "(cache 2, fault '${fault:-none}')"
    LVA_JOBS=2 LVA_FLEET_FAULT="$fault" \
        "$FLEET" --port 0 --fleet "$fleet" --cache 2 > "$log" 2>&1 &
    daemon_pid=$!

    port=""
    for _ in $(seq 1 200); do
        port="$(grep -oE 'lva_fleet: listening on 127\.0\.0\.1:[0-9]+' \
                "$log" 2>/dev/null | grep -oE '[0-9]+$' || true)"
        [[ -n "$port" ]] && break
        if ! kill -0 "$daemon_pid" 2>/dev/null; then
            echo "serve_smoke: fleet died at startup:" >&2
            sed 's/^/  /' "$log" >&2
            exit 1
        fi
        sleep 0.05
    done
    if [[ -z "$port" ]]; then
        echo "serve_smoke: fleet never announced its port" >&2
        exit 1
    fi

    echo "serve_smoke: fleet=$fleet — two concurrent served sweeps" \
         "(port $port)"
    "$CLIENT" --port "$port" sweep --driver fig5_ghb_error \
        --points "$points" --out "$work/fleet$fleet.a.json" \
        2> /dev/null &
    client_a=$!
    "$CLIENT" --port "$port" sweep --driver fig5_ghb_error \
        --points "$points" --out "$work/fleet$fleet.b.json" \
        2> /dev/null &
    client_b=$!
    wait "$client_a"
    wait "$client_b"

    cmp "$reference" "$work/fleet$fleet.a.json"
    cmp "$reference" "$work/fleet$fleet.b.json"
    echo "serve_smoke: fleet=$fleet — served exports byte-identical"

    if [[ "$fleet" -eq 3 ]]; then
        if ! grep -q 'respawning' "$log"; then
            echo "serve_smoke: expected a worker kill + respawn:" >&2
            sed 's/^/  /' "$log" >&2
            exit 1
        fi
        echo "serve_smoke: fleet=3 — killed worker was respawned"
    else
        # Single worker: the stats op lands on the worker that served
        # the sweeps, whose 2-entry cache must have evicted goldens
        # (7 workloads crossed it).
        "$CLIENT" --port "$port" stats > "$work/fleet1.stats.json"
        evictions="$(grep -o '"serve.cache.evictions": *{[^}]*}' \
            "$work/fleet1.stats.json" \
            | grep -o '"value": *[0-9.]*' | grep -oE '[0-9.]+' || true)"
        if [[ -z "$evictions" || "${evictions%%.*}" -le 0 ]]; then
            echo "serve_smoke: expected evictions > 0, got" \
                 "'${evictions:-missing}'" >&2
            exit 1
        fi
        echo "serve_smoke: fleet=1 — $evictions evictions under the" \
             "2-entry cache"
    fi

    kill -TERM "$daemon_pid"
    rc=0
    wait "$daemon_pid" || rc=$?
    daemon_pid=""
    if [[ "$rc" -ne 0 ]]; then
        echo "serve_smoke: fleet exited $rc on SIGTERM (want 0):" >&2
        sed 's/^/  /' "$log" >&2
        exit 1
    fi
    if ! grep -q 'lva_fleet: drained, exiting' "$log"; then
        echo "serve_smoke: fleet did not log its drain:" >&2
        sed 's/^/  /' "$log" >&2
        exit 1
    fi
    echo "serve_smoke: fleet=$fleet — SIGTERM drained, exit 0"
done

# ---- coordinator leg: one sweep sharded across a fleet, with a
# worker killed mid-shard, the coordinator killed at scatter AND at
# gather, and a --resume that must still produce identical bytes ----
COORD="$BUILD/tools/lva_sweep_coord"
if [[ ! -x "$COORD" ]]; then
    echo "serve_smoke: $COORD not built (cmake --build $BUILD)" >&2
    exit 1
fi

# A killed coordinator cannot tear its workers down; reap the strays
# it announced before dying.
reap_coord_workers() {
    local log="$1"
    local pid
    while read -r pid; do
        [[ -n "$pid" ]] && kill -9 "$pid" 2>/dev/null || true
    done < <(grep -oE '\) pid [0-9]+' "$log" | grep -oE '[0-9]+')
}

export LVA_RESULTS_DIR="$work/coord"

echo "serve_smoke: coord — worker kill mid-shard (fleet=3, shards=3)"
rc=0
LVA_JOBS=2 LVA_FLEET_FAULT='*:serve.request.0=abort' \
    "$COORD" --driver fig5_ghb_error --points "$points" \
    --out "$work/coord.kill.json" --fleet 3 --shards 3 \
    > "$work/coord.kill.log" 2>&1 || rc=$?
if [[ "$rc" -ne 0 ]]; then
    echo "serve_smoke: coordinator exited $rc (want 0):" >&2
    sed 's/^/  /' "$work/coord.kill.log" >&2
    exit 1
fi
cmp "$reference" "$work/coord.kill.json"
if ! grep -qE 'stealing|respawn|exited' "$work/coord.kill.log"; then
    echo "serve_smoke: expected worker deaths in the coord log:" >&2
    sed 's/^/  /' "$work/coord.kill.log" >&2
    exit 1
fi
echo "serve_smoke: coord — export byte-identical across worker kills"

# The 28-point grid populates all 3 shards, so both kill sites fire.
echo "serve_smoke: coord — kill at coord.scatter.1, then coord.gather.2"
rm -rf "$work/coord/checkpoints"
rc=0
LVA_JOBS=2 LVA_FAULT='coord.scatter.1=abort' \
    "$COORD" --driver fig5_ghb_error --points "$points" \
    --out "$work/coord.resume.json" --fleet 3 --shards 3 \
    > "$work/coord.dead.log" 2>&1 || rc=$?
reap_coord_workers "$work/coord.dead.log"
if [[ "$rc" -ne 53 ]]; then
    echo "serve_smoke: scatter abort exited $rc (want 53):" >&2
    sed 's/^/  /' "$work/coord.dead.log" >&2
    exit 1
fi
rc=0
LVA_JOBS=2 LVA_FAULT='coord.gather.2=abort' \
    "$COORD" --driver fig5_ghb_error --points "$points" \
    --out "$work/coord.resume.json" --fleet 3 --shards 3 --resume \
    > "$work/coord.dead2.log" 2>&1 || rc=$?
reap_coord_workers "$work/coord.dead2.log"
if [[ "$rc" -ne 53 ]]; then
    echo "serve_smoke: gather abort exited $rc (want 53):" >&2
    sed 's/^/  /' "$work/coord.dead2.log" >&2
    exit 1
fi

echo "serve_smoke: coord — resuming from the checkpoint manifest"
rc=0
LVA_JOBS=2 "$COORD" --driver fig5_ghb_error --points "$points" \
    --out "$work/coord.resume.json" --fleet 3 --shards 3 --resume \
    --print-stats > "$work/coord.resume.log" 2>&1 || rc=$?
if [[ "$rc" -ne 0 ]]; then
    echo "serve_smoke: resumed coordinator exited $rc (want 0):" >&2
    sed 's/^/  /' "$work/coord.resume.log" >&2
    exit 1
fi
cmp "$reference" "$work/coord.resume.json"
if ! grep -q 'resumed' "$work/coord.resume.log"; then
    echo "serve_smoke: expected resumed shards in the coord log:" >&2
    sed 's/^/  /' "$work/coord.resume.log" >&2
    exit 1
fi
echo "serve_smoke: coord — resumed export byte-identical"
unset LVA_RESULTS_DIR

echo "serve_smoke: OK"
