#!/usr/bin/env bash
# Smoke test for the evaluation daemon (docs/serving.md): prove that a
# sweep submitted through lva_served/lva_client returns the exact bytes
# the bench driver writes to results/stats/<driver>.json.
#
# For LVA_JOBS in {1, 4}:
#   1. run build/bench/fig5_ghb_error directly (the reference export),
#   2. start lva_served on an ephemeral port with the same settings,
#   3. submit the same 28-point sweep from TWO concurrent clients,
#   4. cmp(1) both served exports against the driver's file,
#   5. SIGTERM the daemon and require a drained exit 0.
#
# Usage: scripts/serve_smoke.sh [build-dir]   (default: build)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD="${1:-build}"
SERVED="$BUILD/tools/lva_served"
CLIENT="$BUILD/tools/lva_client"
DRIVER="$BUILD/bench/fig5_ghb_error"

for bin in "$SERVED" "$CLIENT" "$DRIVER"; do
    if [[ ! -x "$bin" ]]; then
        echo "serve_smoke: $bin not built (cmake --build $BUILD)" >&2
        exit 1
    fi
done

# Seconds-scale evaluation; identical settings for driver and daemon.
export LVA_SEEDS=1
export LVA_SCALE=0.05
unset LVA_CHECKPOINT LVA_RESUME LVA_FAULT LVA_POINT_TIMEOUT_MS \
      LVA_RETRIES LVA_TRACE

work="$(mktemp -d)"
daemon_pid=""
cleanup() {
    [[ -n "$daemon_pid" ]] && kill "$daemon_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

# The exact fig5_ghb_error sweep grid (bench/fig5_ghb_error.cc):
# every workload x GHB size, baseline config otherwise.
points="$work/points.json"
{
    echo "["
    sep=""
    for w in blackscholes bodytrack canneal ferret fluidanimate \
             swaptions x264; do
        for g in 0 1 2 4; do
            printf '%s  {"label": "ghb-%s", "workload": "%s", "config": {"ghb": %s}}' \
                   "$sep" "$g" "$w" "$g"
            sep=$',\n'
        done
    done
    echo
    echo "]"
} > "$points"

for jobs in 1 4; do
    echo "serve_smoke: LVA_JOBS=$jobs — direct driver run"
    LVA_JOBS="$jobs" LVA_RESULTS_DIR="$work/direct$jobs" \
        "$DRIVER" > /dev/null
    reference="$work/direct$jobs/stats/fig5_ghb_error.json"

    log="$work/served$jobs.log"
    LVA_JOBS="$jobs" "$SERVED" --port 0 --workers 2 > "$log" 2>&1 &
    daemon_pid=$!

    port=""
    for _ in $(seq 1 100); do
        port="$(grep -oE '127\.0\.0\.1:[0-9]+' "$log" 2>/dev/null \
                | head -1 | cut -d: -f2 || true)"
        [[ -n "$port" ]] && break
        if ! kill -0 "$daemon_pid" 2>/dev/null; then
            echo "serve_smoke: daemon died at startup:" >&2
            sed 's/^/  /' "$log" >&2
            exit 1
        fi
        sleep 0.05
    done
    if [[ -z "$port" ]]; then
        echo "serve_smoke: daemon never announced its port" >&2
        exit 1
    fi

    echo "serve_smoke: LVA_JOBS=$jobs — two concurrent served sweeps" \
         "(port $port)"
    "$CLIENT" --port "$port" sweep --driver fig5_ghb_error \
        --points "$points" --out "$work/served$jobs.a.json" \
        2> /dev/null &
    client_a=$!
    "$CLIENT" --port "$port" sweep --driver fig5_ghb_error \
        --points "$points" --out "$work/served$jobs.b.json" \
        2> /dev/null &
    client_b=$!
    wait "$client_a"
    wait "$client_b"

    cmp "$reference" "$work/served$jobs.a.json"
    cmp "$reference" "$work/served$jobs.b.json"
    echo "serve_smoke: LVA_JOBS=$jobs — served exports byte-identical"

    kill -TERM "$daemon_pid"
    rc=0
    wait "$daemon_pid" || rc=$?
    daemon_pid=""
    if [[ "$rc" -ne 0 ]]; then
        echo "serve_smoke: daemon exited $rc on SIGTERM (want 0):" >&2
        sed 's/^/  /' "$log" >&2
        exit 1
    fi
    echo "serve_smoke: LVA_JOBS=$jobs — SIGTERM drained, exit 0"
done

echo "serve_smoke: OK"
