#!/usr/bin/env bash
# Static-analysis gate: lva_lint (custom determinism/safety rules) +
# lva_audit (whole-project model: include layering, stat/knob/fault
# registries, lock-order graph) + clang-tidy (curated .clang-tidy
# profile) over the compilation database.  Non-zero exit on any
# unsuppressed finding.
#
# Usage: scripts/lint.sh [--no-tidy]
#   LVA_BUILD_DIR  build tree holding lva_lint and
#                  compile_commands.json (default: build)
#
# clang-tidy is optional at runtime: hosts without it (the minimal
# container, for one) still get the full lva_lint pass, and CI installs
# clang-tidy so the curated profile is enforced before merge.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${LVA_BUILD_DIR:-build}"
RUN_TIDY=1
[[ "${1:-}" == "--no-tidy" ]] && RUN_TIDY=0

if [[ ! -x "$BUILD_DIR/tools/lva_lint" || \
      ! -x "$BUILD_DIR/tools/lva_audit" ]]; then
    cmake -B "$BUILD_DIR" -G Ninja >/dev/null
    cmake --build "$BUILD_DIR" --target lva_lint lva_audit >/dev/null
fi

# tests/lint_fixtures/ and tests/audit_fixtures/ are deliberately
# hazardous input for the tool tests, not product code.
"$BUILD_DIR/tools/lva_lint" --root . --exclude tests/lint_fixtures/ \
    --exclude tests/audit_fixtures/ src bench tests tools examples

# Whole-project semantic audit.  Prefer the compilation database so
# the file set is exactly what the build compiles; fall back to the
# source-root walk when the tree was configured without one.
if [[ -f "$BUILD_DIR/compile_commands.json" ]]; then
    "$BUILD_DIR/tools/lva_audit" --root . \
        --compdb "$BUILD_DIR/compile_commands.json"
else
    echo "lint.sh: $BUILD_DIR/compile_commands.json missing;" \
         "lva_audit falling back to the source-root walk"
    "$BUILD_DIR/tools/lva_audit" --root .
fi

if [[ "$RUN_TIDY" -eq 1 ]] && command -v clang-tidy >/dev/null 2>&1; then
    if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
        echo "lint.sh: $BUILD_DIR/compile_commands.json missing;" \
             "configure with cmake first" >&2
        exit 1
    fi
    echo "lint.sh: running clang-tidy ($(clang-tidy --version |
        head -n1 | sed 's/^ *//'))"
    # Lint the translation units the build actually compiles, minus
    # the lint fixtures; headers ride along via HeaderFilterRegex.
    mapfile -t files < <(sed -n 's/.*"file": "\(.*\)".*/\1/p' \
            "$BUILD_DIR/compile_commands.json" |
        grep -v 'tests/lint_fixtures/' | LC_ALL=C sort -u)
    clang-tidy -p "$BUILD_DIR" --quiet "${files[@]}"
    echo "lint.sh: clang-tidy clean (${#files[@]} TUs)"
elif [[ "$RUN_TIDY" -eq 1 ]]; then
    echo "lint.sh: clang-tidy not installed; skipped (lva_lint rules" \
         "still enforced — CI runs the full profile)"
fi
