#!/usr/bin/env bash
# Validate docs/metrics.md against the registry self-dump, both ways:
# every documented metric path must exist in a registry (or derived
# catalog) and every registered path must be documented.
#
# Usage: scripts/check_docs.sh [path-to-lva_stats_catalog]
#   (default: build/tools/lva_stats_catalog)
set -euo pipefail
cd "$(dirname "$0")/.."

CATALOG_BIN="${1:-build/tools/lva_stats_catalog}"
DOC=docs/metrics.md

if [[ ! -x "$CATALOG_BIN" ]]; then
    echo "check_docs: $CATALOG_BIN not built (cmake --build build)" >&2
    exit 1
fi

dump="$(mktemp)"
docpaths="$(mktemp)"
trap 'rm -f "$dump" "$docpaths"' EXIT

"$CATALOG_BIN" | cut -f1 | LC_ALL=C sort -u > "$dump"

# Documented paths: the first backticked token of each table row
# between the catalog markers.
awk '/<!-- catalog:begin -->/{on=1} /<!-- catalog:end -->/{on=0}
     on && /^\| `/ { split($0, f, "`"); print f[2] }' "$DOC" \
    | LC_ALL=C sort -u > "$docpaths"

status=0

undocumented="$(comm -23 "$dump" "$docpaths")"
if [[ -n "$undocumented" ]]; then
    echo "check_docs: registered stats missing from $DOC:" >&2
    echo "$undocumented" | sed 's/^/  /' >&2
    status=1
fi

stale="$(comm -13 "$dump" "$docpaths")"
if [[ -n "$stale" ]]; then
    echo "check_docs: $DOC documents paths no registry provides:" >&2
    echo "$stale" | sed 's/^/  /' >&2
    status=1
fi

if [[ "$status" -eq 0 ]]; then
    echo "check_docs: $DOC matches the registry self-dump" \
         "($(wc -l < "$dump") paths)"
fi
exit "$status"
