#!/usr/bin/env bash
# Validate the documentation against the code, both ways:
#
#   1. docs/metrics.md     catalog markers  <->  lva_stats_catalog dump
#   2. README.md           knobs markers    <->  "LVA_*" literals in
#                                               src/ tools/ bench/
#   3. docs/reproducing.md drivers markers  <->  bench/*.cc basenames
#   4. docs/performance.md hotpath markers  <->  sources fenced with
#                                               "lva-hot-path: begin"
#   5. docs/serving.md     serve-stats markers <-> the serve.* subtree
#                                               of the catalog dump
#   6. docs/topology.md    machine-schema markers <-> the parser's own
#                                               key list (the catalog
#                                               binary's
#                                               --machine-schema dump)
#
# Every documented entry must exist in the code and every code entry
# must be documented; either direction failing fails the script.
#
# Usage: scripts/check_docs.sh [path-to-lva_stats_catalog]
#   (default: build/tools/lva_stats_catalog)
set -euo pipefail
cd "$(dirname "$0")/.."

CATALOG_BIN="${1:-build/tools/lva_stats_catalog}"

if [[ ! -x "$CATALOG_BIN" ]]; then
    echo "check_docs: $CATALOG_BIN not built (cmake --build build)" >&2
    exit 1
fi

status=0
workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

# Documented entries: the first backticked token of each table row
# between the given begin/end markers.
doc_entries() { # <doc> <marker>
    awk -v m="$2" \
        '$0 ~ "<!-- " m ":begin -->" {on=1}
         $0 ~ "<!-- " m ":end -->"   {on=0}
         on && /^\| `/ { split($0, f, "`"); print f[2] }' "$1" \
        | LC_ALL=C sort -u
}

check() { # <name> <doc> <code-list-file> <doc-list-file> <what>
    local name="$1" doc="$2" code="$3" docl="$4" what="$5"

    local undocumented stale
    undocumented="$(comm -23 "$code" "$docl")"
    if [[ -n "$undocumented" ]]; then
        echo "check_docs: $what in the code but missing from $doc:" >&2
        echo "$undocumented" | sed 's/^/  /' >&2
        status=1
    fi

    stale="$(comm -13 "$code" "$docl")"
    if [[ -n "$stale" ]]; then
        echo "check_docs: $doc documents $what the code does not have:" >&2
        echo "$stale" | sed 's/^/  /' >&2
        status=1
    fi

    if [[ -z "$undocumented" && -z "$stale" ]]; then
        echo "check_docs: $doc matches ($(wc -l < "$code") $what)"
    fi
}

# 1. Metric catalog: registry self-dump vs docs/metrics.md.
"$CATALOG_BIN" | cut -f1 | LC_ALL=C sort -u > "$workdir/stats.code"
doc_entries docs/metrics.md catalog > "$workdir/stats.doc"
check catalog docs/metrics.md "$workdir/stats.code" "$workdir/stats.doc" \
      "stat paths"

# 2. Environment knobs: every "LVA_*" string literal the sources read
#    vs the consolidated README table. (Build-time LVA_* CMake options
#    never appear as string literals in the sources, so the scan stays
#    runtime-only.)
grep -rhoE '"LVA_[A-Z_0-9]+"' src tools bench | tr -d '"' \
    | LC_ALL=C sort -u > "$workdir/knobs.code"
doc_entries README.md knobs > "$workdir/knobs.doc"
check knobs README.md "$workdir/knobs.code" "$workdir/knobs.doc" \
      "environment knobs"

# 3. Bench drivers: every bench/*.cc vs the docs/reproducing.md map.
for f in bench/*.cc; do
    basename "$f" .cc
done | LC_ALL=C sort -u > "$workdir/drivers.code"
doc_entries docs/reproducing.md drivers > "$workdir/drivers.doc"
check drivers docs/reproducing.md \
      "$workdir/drivers.code" "$workdir/drivers.doc" "bench drivers"

# 4. Hot-path fences: every source with an "lva-hot-path: begin"
#    marker vs the fenced-file table in docs/performance.md, so the
#    lint-enforced no-allocation zones and their documentation cannot
#    drift apart in either direction.
# Whole-line comments only, mirroring the lint rule's parser: the
# marker text also appears in the rule's own string literals.
grep -rlE '^[[:space:]]*//.*lva-hot-path: begin' src tools bench \
    2>/dev/null | LC_ALL=C sort -u > "$workdir/hotpath.code"
doc_entries docs/performance.md hotpath > "$workdir/hotpath.doc"
check hotpath docs/performance.md \
      "$workdir/hotpath.code" "$workdir/hotpath.doc" "hot-path fences"

# 5. Serving stats: the serve.* / serve.cache.* subtree of the
#    registry dump vs the serve-stats table in docs/serving.md, so
#    the serving doc always describes exactly the counters the fleet
#    exports (the full catalog in docs/metrics.md is gate 1; this
#    pins the serving doc's own copy both ways).
"$CATALOG_BIN" | cut -f1 | grep '^serve\.' \
    | LC_ALL=C sort -u > "$workdir/serve.code"
doc_entries docs/serving.md serve-stats > "$workdir/serve.doc"
check serve-stats docs/serving.md \
      "$workdir/serve.code" "$workdir/serve.doc" "serving stat paths"

# 6. Machine schema: every lva-machine-v1 key the parser accepts
#    (machineSchemaKeys(), dumped by --machine-schema) vs the key
#    table in docs/topology.md — a config key without a documented
#    row, or a documented row for a key the parser dropped, fails.
"$CATALOG_BIN" --machine-schema | LC_ALL=C sort -u \
    > "$workdir/machine.code"
doc_entries docs/topology.md machine-schema > "$workdir/machine.doc"
check machine-schema docs/topology.md \
      "$workdir/machine.code" "$workdir/machine.doc" "machine keys"

exit "$status"
